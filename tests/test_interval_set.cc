// Tests for IntervalSet, including a randomized property sweep against a
// bitmap reference implementation.
#include "base/interval_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"

namespace {

using base::IntervalSet;

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.TotalLength(), 0u);
  EXPECT_FALSE(s.Contains(0));
}

TEST(IntervalSet, InsertAndQuery) {
  IntervalSet s;
  s.Insert(10, 20);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(19));
  EXPECT_FALSE(s.Contains(20));
  EXPECT_FALSE(s.Contains(9));
  EXPECT_EQ(s.TotalLength(), 10u);
}

TEST(IntervalSet, EmptyInsertIsNoop) {
  IntervalSet s;
  s.Insert(5, 5);
  s.Insert(7, 3);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, AdjacentInsertsCoalesce) {
  IntervalSet s;
  s.Insert(0, 10);
  s.Insert(10, 20);
  EXPECT_EQ(s.IntervalCount(), 1u);
  EXPECT_TRUE(s.ContainsRange(0, 20));
}

TEST(IntervalSet, OverlappingInsertsCoalesce) {
  IntervalSet s;
  s.Insert(0, 15);
  s.Insert(10, 30);
  s.Insert(5, 12);
  EXPECT_EQ(s.IntervalCount(), 1u);
  EXPECT_EQ(s.TotalLength(), 30u);
}

TEST(IntervalSet, InsertBridgesGap) {
  IntervalSet s;
  s.Insert(0, 10);
  s.Insert(20, 30);
  EXPECT_EQ(s.IntervalCount(), 2u);
  s.Insert(10, 20);
  EXPECT_EQ(s.IntervalCount(), 1u);
}

TEST(IntervalSet, RemoveSplits) {
  IntervalSet s;
  s.Insert(0, 30);
  s.Remove(10, 20);
  EXPECT_EQ(s.IntervalCount(), 2u);
  EXPECT_TRUE(s.ContainsRange(0, 10));
  EXPECT_TRUE(s.ContainsRange(20, 30));
  EXPECT_FALSE(s.Intersects(10, 20));
}

TEST(IntervalSet, RemoveEdges) {
  IntervalSet s;
  s.Insert(0, 30);
  s.Remove(0, 5);
  s.Remove(25, 30);
  EXPECT_EQ(s.IntervalCount(), 1u);
  EXPECT_EQ(s.TotalLength(), 20u);
}

TEST(IntervalSet, RemoveSpanningMultiple) {
  IntervalSet s;
  s.Insert(0, 10);
  s.Insert(20, 30);
  s.Insert(40, 50);
  s.Remove(5, 45);
  EXPECT_EQ(s.TotalLength(), 10u);
  EXPECT_TRUE(s.ContainsRange(0, 5));
  EXPECT_TRUE(s.ContainsRange(45, 50));
}

TEST(IntervalSet, IntersectsPartialOverlap) {
  IntervalSet s;
  s.Insert(10, 20);
  EXPECT_TRUE(s.Intersects(5, 11));
  EXPECT_TRUE(s.Intersects(19, 25));
  EXPECT_FALSE(s.Intersects(0, 10));
  EXPECT_FALSE(s.Intersects(20, 30));
}

TEST(IntervalSet, ForEachInVisitsClampedPieces) {
  IntervalSet s;
  s.Insert(0, 10);
  s.Insert(20, 30);
  std::vector<std::pair<uint64_t, uint64_t>> seen;
  s.ForEachIn(5, 25, [&](uint64_t lo, uint64_t hi) {
    seen.emplace_back(lo, hi);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, uint64_t>{5, 10}));
  EXPECT_EQ(seen[1], (std::pair<uint64_t, uint64_t>{20, 25}));
}

// Randomized differential test against a bitmap.
class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, MatchesBitmapReference) {
  constexpr uint64_t kUniverse = 512;
  base::Rng rng(GetParam());
  IntervalSet s;
  std::vector<bool> ref(kUniverse, false);
  for (int step = 0; step < 500; ++step) {
    const uint64_t lo = rng.NextBelow(kUniverse);
    const uint64_t hi = lo + rng.NextBelow(kUniverse - lo + 1);
    if (rng.NextBool(0.5)) {
      s.Insert(lo, hi);
      for (uint64_t i = lo; i < hi; ++i) {
        ref[i] = true;
      }
    } else {
      s.Remove(lo, hi);
      for (uint64_t i = lo; i < hi; ++i) {
        ref[i] = false;
      }
    }
    // Spot-check membership and the aggregate length.
    uint64_t ref_len = 0;
    for (uint64_t i = 0; i < kUniverse; ++i) {
      ref_len += ref[i] ? 1 : 0;
    }
    ASSERT_EQ(s.TotalLength(), ref_len) << "step " << step;
    for (int probe = 0; probe < 16; ++probe) {
      const uint64_t p = rng.NextBelow(kUniverse);
      ASSERT_EQ(s.Contains(p), ref[p]) << "point " << p << " step " << step;
    }
    // Intervals must be disjoint and non-adjacent (coalesced).
    const auto spans = s.ToVector();
    for (size_t i = 1; i < spans.size(); ++i) {
      ASSERT_GT(spans[i].lo, spans[i - 1].hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
