#include <set>
#include <string>
// Integration tests for the experiment harness: system factories, testbed
// construction, clean-slate / reused-VM / collocated scenarios, and the
// headline shape assertions the paper's evaluation rests on.
#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace {

using harness::AllSystems;
using harness::BedOptions;
using harness::MakeTestBed;
using harness::SystemKind;
using harness::SystemName;

BedOptions QuickBed() {
  BedOptions options;
  options.host_frames = 131072;
  options.vm_gfn_count = 49152;
  options.boot_noise_fraction = 0.3;
  options.seed = 77;
  return options;
}

workload::WorkloadSpec QuickSpec() {
  workload::WorkloadSpec spec = workload::SpecByName("Canneal");
  spec.working_set_pages = 12288;
  spec.ops = 60000;
  return spec;
}

TEST(Systems, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (SystemKind kind : AllSystems()) {
    names.insert(std::string(SystemName(kind)));
  }
  EXPECT_EQ(names.size(), 8u);
  EXPECT_EQ(SystemName(SystemKind::kGemini), "Gemini");
  EXPECT_EQ(SystemName(SystemKind::kHostBVmB), "Host-B-VM-B");
}

TEST(Systems, PolicyFactoriesProduceDistinctPolicies) {
  for (SystemKind kind : AllSystems()) {
    if (kind == SystemKind::kGemini) {
      continue;  // wired via InstallGeminiVm
    }
    auto guest = harness::MakeGuestPolicy(kind);
    auto host = harness::MakeHostPolicy(kind);
    ASSERT_NE(guest, nullptr) << SystemName(kind);
    ASSERT_NE(host, nullptr) << SystemName(kind);
  }
}

TEST(Systems, AlignmentTableSystemsAreSixInPaperOrder) {
  const auto systems = harness::AlignmentTableSystems();
  ASSERT_EQ(systems.size(), 6u);
  EXPECT_EQ(systems.front(), SystemKind::kThp);
  EXPECT_EQ(systems.back(), SystemKind::kGemini);
}

TEST(TestBed, FragmentationApplied) {
  BedOptions options = QuickBed();
  options.fragmentation_target = 0.75;
  options.host_fragmentation_target = 0.85;
  auto bed = MakeTestBed(SystemKind::kHostBVmB, options);
  EXPECT_GE(bed.machine->host().Fmfi(), 0.8);
  EXPECT_GE(bed.vm().guest().Fmfi(), 0.7);
}

TEST(TestBed, UnfragmentedBedStaysClean) {
  BedOptions options = QuickBed();
  options.fragmented = false;
  options.boot_noise_fraction = 0.0;
  auto bed = MakeTestBed(SystemKind::kHostBVmB, options);
  EXPECT_LT(bed.machine->host().Fmfi(), 0.1);
}

TEST(TestBed, BootNoiseLeavesStaleEptState) {
  BedOptions options = QuickBed();
  options.fragmented = false;
  auto bed = MakeTestBed(SystemKind::kHostBVmB, options);
  // Guest memory is free again, but the EPT still maps what boot touched.
  EXPECT_EQ(bed.vm().guest().table().mapped_pages(), 0u);
  EXPECT_GT(bed.vm().host_slice().table().mapped_pages(), 1000u);
}

TEST(Scenario, CleanSlateRunsEverySystem) {
  const auto spec = QuickSpec();
  for (SystemKind kind : AllSystems()) {
    const auto result = harness::RunCleanSlate(kind, spec, QuickBed());
    EXPECT_GT(result.throughput, 0.0) << SystemName(kind);
    EXPECT_GT(result.ops, 0u);
  }
}

TEST(Scenario, GeminiOutperformsBasePagesOnTlbMisses) {
  const auto spec = QuickSpec();
  const auto base = harness::RunCleanSlate(SystemKind::kHostBVmB, spec,
                                           QuickBed());
  const auto gem = harness::RunCleanSlate(SystemKind::kGemini, spec,
                                          QuickBed());
  EXPECT_LT(gem.tlb_miss_rate, base.tlb_miss_rate);
  EXPECT_GT(gem.throughput, base.throughput);
  EXPECT_GT(gem.alignment.well_aligned_rate, 0.5);
  EXPECT_EQ(base.alignment.guest_huge, 0u);
}

TEST(Scenario, MisalignmentBarelyHelps) {
  // The motivating claim (§2.3): host-only huge pages move performance only
  // marginally because no 2 MiB TLB entries result.
  const auto spec = QuickSpec();
  const auto base = harness::RunCleanSlate(SystemKind::kHostBVmB, spec,
                                           QuickBed());
  const auto mis = harness::RunCleanSlate(SystemKind::kMisalignment, spec,
                                          QuickBed());
  EXPECT_EQ(mis.alignment.aligned_pairs, 0u);
  // Within ~15 % of base-only: page-walk savings only, no TLB coverage.
  EXPECT_LT(mis.throughput, base.throughput * 1.15);
  EXPECT_GT(mis.throughput, base.throughput * 0.9);
}

TEST(Scenario, ReusedVmKeepsAlignmentHigh) {
  workload::WorkloadSpec spec = QuickSpec();
  BedOptions options = QuickBed();
  options.vm_gfn_count = 65536;
  const auto reused =
      harness::RunReusedVm(SystemKind::kGemini, spec, options);
  EXPECT_GT(reused.alignment.well_aligned_rate, 0.6);
  EXPECT_GT(reused.throughput, 0.0);
}

TEST(Scenario, GeminiAblationsRun) {
  workload::WorkloadSpec spec = QuickSpec();
  BedOptions options = QuickBed();
  options.vm_gfn_count = 65536;
  gemini::GeminiOptions full;
  gemini::GeminiOptions no_bucket;
  no_bucket.enable_bucket = false;
  const auto with_bucket =
      harness::RunGeminiAblation(spec, options, full);
  const auto without_bucket =
      harness::RunGeminiAblation(spec, options, no_bucket);
  EXPECT_GT(with_bucket.throughput, 0.0);
  EXPECT_GT(without_bucket.throughput, 0.0);
}

TEST(Scenario, CollocatedVmsBothMakeProgress) {
  workload::WorkloadSpec spec0 = QuickSpec();
  workload::WorkloadSpec spec1 = workload::SpecByName("Shore");
  spec1.working_set_pages = 4096;
  spec1.ops = 30000;
  BedOptions options = QuickBed();
  options.host_frames = 262144;
  const auto result =
      harness::RunCollocated(SystemKind::kGemini, spec0, spec1, options);
  EXPECT_GT(result.vm0.throughput, 0.0);
  EXPECT_GT(result.vm1.throughput, 0.0);
  // The default 60 % warm-up is excluded from measured ops.
  EXPECT_EQ(result.vm0.ops, spec0.ops - spec0.ops * 6 / 10);
  EXPECT_EQ(result.vm1.ops, spec1.ops - spec1.ops * 6 / 10);
}

TEST(Scenario, ScaleSpecShrinksOps) {
  const auto spec = workload::SpecByName("Redis");
  const auto scaled = harness::ScaleSpec(spec, 0.25);
  EXPECT_EQ(scaled.ops, spec.ops / 4);
  EXPECT_GT(scaled.churn_period_ops, 0u);
}

TEST(Scenario, DeterministicAcrossRuns) {
  const auto spec = QuickSpec();
  const auto a = harness::RunCleanSlate(SystemKind::kThp, spec, QuickBed());
  const auto b = harness::RunCleanSlate(SystemKind::kThp, spec, QuickBed());
  EXPECT_EQ(a.tlb_misses, b.tlb_misses);
  EXPECT_EQ(a.busy_cycles, b.busy_cycles);
  EXPECT_DOUBLE_EQ(a.alignment.well_aligned_rate,
                   b.alignment.well_aligned_rate);
}

}  // namespace
