// Determinism tests for the epoch-barriered parallel backend (DESIGN.md
// §3g).  The backend's contract is that GEMINI_VM_THREADS is unobservable
// in simulation output: the epoch schedule — which ops run in which epoch,
// when faults and driver events drain, the canonical VM-ID replay order of
// staged shared-TLB traffic — is fixed by the lane specs alone.  We pin
// that down three ways:
//
//  * full rack-density scenarios (arrival waves, diurnal load, churn, GC,
//    latency requests, teardown) digested at 1/2/4/8 worker threads must
//    be bit-identical, in all four TLB sharing modes (dynamic included:
//    repartition ticks fire only at epoch barriers, so the adapted way
//    windows and their eviction counts are part of the contract);
//  * the machine-level epoch primitives on pre-faulted (clean) private-
//    mode streams must match Machine::AccessBatch access-for-access,
//    including the clock;
//  * a seeded fuzz interleaving VM boots, VMA churn, scalar accesses, and
//    manual epochs must replay bit-identically run-to-run.
#include "workload/epoch_executor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "harness/experiment.h"
#include "harness/systems.h"
#include "os/machine.h"

namespace {

using harness::BedOptions;
using harness::ScaleOptions;
using harness::SystemKind;
using mmu::TlbShareMode;

void Append(std::string* out, const char* label, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", label, v);
  *out += buf;
}

void Append(std::string* out, const char* label, uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%llu;", label,
                static_cast<unsigned long long>(v));
  *out += buf;
}

std::string DigestResult(const workload::RunResult& r) {
  std::string d = r.workload + ":";
  Append(&d, "ops", r.ops);
  Append(&d, "req", r.requests);
  Append(&d, "busy", r.busy_cycles);
  Append(&d, "thr", r.throughput);
  Append(&d, "lat", r.mean_latency);
  Append(&d, "p99", r.p99_latency);
  Append(&d, "hit", r.tlb_hits);
  Append(&d, "miss", r.tlb_misses);
  Append(&d, "fault", r.faulting_accesses);
  Append(&d, "stale", r.counters.tlb_stale_hits);
  Append(&d, "shoot", r.counters.tlb_shootdowns);
  Append(&d, "xvm", r.counters.tlb_cross_vm_evictions);
  Append(&d, "inval", r.counters.tlb_vm_invalidated);
  Append(&d, "dself", r.counters.tlb_displaced_by_self);
  Append(&d, "dother", r.counters.tlb_displaced_by_other);
  Append(&d, "shadow", r.counters.util_shadow_misses);
  Append(&d, "ways", r.counters.tlb_ways_assigned);
  Append(&d, "repart", r.counters.tlb_repartitions);
  Append(&d, "revict", r.counters.tlb_repartition_evictions);
  Append(&d, "tcyc", r.counters.translation_cycles);
  Append(&d, "goh", r.counters.guest_overhead_cycles);
  Append(&d, "hoh", r.counters.host_overhead_cycles);
  Append(&d, "gprom", r.counters.guest_promotions);
  Append(&d, "hprom", r.counters.host_promotions);
  Append(&d, "ghuge", r.alignment.guest_huge);
  Append(&d, "align", r.alignment.well_aligned_rate);
  uint64_t lat_hist = 0;
  for (size_t i = 0; i < r.counters.lat_hist.size(); ++i) {
    lat_hist = lat_hist * 1099511628211ull + r.counters.lat_hist[i];
  }
  Append(&d, "lhist", lat_hist);
  return d;
}

// A 3-VM rack-density slice: a churning key/value store, a GC'd latency
// server arriving in the second wave, and a gradually-growing throughput
// job — every driver event class the serial phase must drain.
std::vector<workload::WorkloadSpec> ScenarioSpecs() {
  workload::WorkloadSpec kv = workload::SpecByName("Canneal");
  kv.name = "kv";
  kv.working_set_pages = 4096;
  kv.vma_count = 8;
  kv.ops = 24000;
  kv.churn_period_ops = 3000;

  workload::WorkloadSpec server = kv;
  server.name = "server";
  server.kind = workload::Kind::kLatency;
  server.accesses_per_request = 16;
  server.churn_period_ops = 0;
  server.gc_sweep_period_ops = 8000;
  server.ops = 20000;

  workload::WorkloadSpec grower = kv;
  grower.name = "grower";
  grower.alloc = workload::AllocPattern::kGradual;
  grower.churn_period_ops = 0;
  grower.ops = 16000;
  return {kv, server, grower};
}

std::string RunScenario(TlbShareMode mode, uint32_t threads) {
  BedOptions bed;
  bed.host_frames = 131072;
  bed.vm_gfn_count = 16384;
  bed.fragmented = false;
  bed.boot_noise_fraction = 0.1;
  bed.seed = 33;
  bed.tlb_mode = mode;
  ScaleOptions scale;
  scale.threads = threads;
  scale.quantum = 64;
  scale.wave_size = 2;
  scale.wave_epochs = 16;
  scale.teardown_on_finish = true;
  scale.load_phases = {100, 25};
  scale.load_phase_epochs = 32;
  const harness::CollocatedManyResult r = harness::RunCollocatedMany(
      SystemKind::kGemini, ScenarioSpecs(), bed, scale);
  std::string digest;
  Append(&digest, "epochs", r.epochs);
  for (const workload::RunResult& vm : r.vms) {
    digest += DigestResult(vm);
  }
  for (const auto& row : r.interference.vms) {
    digest += row.label + ";";
    Append(&digest, "rmiss", row.tlb_misses);
    for (const uint64_t d : row.displaced_by) {
      Append(&digest, "d", d);
    }
  }
  return digest;
}

TEST(EpochExecutor, ThreadCountUnobservableAllModes) {
  for (const TlbShareMode mode :
       {TlbShareMode::kPrivate, TlbShareMode::kShared,
        TlbShareMode::kPartitioned, TlbShareMode::kDynamic}) {
    const std::string serial = RunScenario(mode, 1);
    for (const uint32_t threads : {2u, 4u, 8u}) {
      EXPECT_EQ(serial, RunScenario(mode, threads))
          << "mode=" << mmu::TlbShareModeName(mode)
          << " threads=" << threads;
    }
  }
}

// --- machine-level primitives --------------------------------------------

struct TwoVmBed {
  std::unique_ptr<osim::Machine> machine;
  std::vector<int32_t> vm_ids;
  std::vector<uint64_t> base_vpns;  // one mapped VMA start per VM
};

TwoVmBed MakeTwoVmBed(TlbShareMode mode, uint64_t pages) {
  TwoVmBed bed;
  osim::MachineConfig config;
  config.host_frames = 65536;
  config.seed = 5;
  config.tlb_mode = mode;
  // No daemon interference: the clean-prefix equivalence below compares
  // pure translation streams.
  config.daemon_period = 1ull << 40;
  bed.machine = std::make_unique<osim::Machine>(config);
  for (int v = 0; v < 2; ++v) {
    osim::VirtualMachine& vm =
        harness::AddSystemVm(*bed.machine, SystemKind::kThp, 8192);
    bed.vm_ids.push_back(vm.id());
    osim::Vma& vma = vm.guest().aspace().MapAnonymous(pages);
    bed.base_vpns.push_back(vma.start_page);
    for (uint64_t p = 0; p < pages; ++p) {
      bed.machine->Access(vm.id(), vma.start_page + p);  // pre-fault
    }
  }
  return bed;
}

TEST(EpochExecutor, CleanEpochBatchMatchesSerialBatchPrivate) {
  constexpr uint64_t kPages = 512;
  constexpr uint64_t kOps = 2000;
  TwoVmBed serial = MakeTwoVmBed(TlbShareMode::kPrivate, kPages);
  TwoVmBed epoch = MakeTwoVmBed(TlbShareMode::kPrivate, kPages);

  base::Rng rng(99);
  std::vector<std::vector<uint64_t>> plans(2);
  for (int v = 0; v < 2; ++v) {
    for (uint64_t i = 0; i < kOps; ++i) {
      plans[v].push_back(serial.base_vpns[v] + rng.NextBelow(kPages));
    }
  }
  std::vector<osim::VirtualMachine::AccessResult> serial_out, epoch_out;
  epoch_out.resize(kOps);
  epoch.machine->BeginEpoch();
  for (int v = 0; v < 2; ++v) {
    serial.machine->AccessBatch(serial.vm_ids[v], plans[v], /*work=*/37,
                                &serial_out);
    const size_t done = epoch.machine->EpochAccessBatch(
        epoch.vm_ids[v], plans[v], /*work=*/37, &epoch_out);
    ASSERT_EQ(done, kOps) << "pre-faulted stream must stay clean";
    for (uint64_t i = 0; i < kOps; ++i) {
      ASSERT_EQ(serial_out[i].cycles, epoch_out[i].cycles) << i;
      ASSERT_EQ(serial_out[i].tlb_hit, epoch_out[i].tlb_hit) << i;
      ASSERT_EQ(serial_out[i].well_aligned, epoch_out[i].well_aligned) << i;
    }
  }
  epoch.machine->EpochBarrier();
  EXPECT_EQ(serial.machine->Now(), epoch.machine->Now());
  for (int v = 0; v < 2; ++v) {
    const auto& st = serial.machine->vm(serial.vm_ids[v]).engine().tlb();
    const auto& et = epoch.machine->vm(epoch.vm_ids[v]).engine().tlb();
    EXPECT_EQ(st.hits(), et.hits()) << v;
    EXPECT_EQ(st.misses(), et.misses()) << v;
  }
}

TEST(EpochExecutor, EpochGuardsRejectSerialEntryPoints) {
  TwoVmBed bed = MakeTwoVmBed(TlbShareMode::kPrivate, 64);
  bed.machine->BeginEpoch();
  EXPECT_TRUE(bed.machine->in_epoch());
  EXPECT_DEATH(bed.machine->Access(bed.vm_ids[0], bed.base_vpns[0]), "");
  EXPECT_DEATH(bed.machine->AdvanceTime(100), "");
  bed.machine->EpochBarrier();
  EXPECT_FALSE(bed.machine->in_epoch());
}

// Seeded fuzz: boots, VMA churn (map/unmap = shutdown noise), scalar
// accesses, and manual epochs with faulting streams interleave under one
// plan; the whole machine must replay bit-identically.
std::string FuzzRun(uint64_t seed, TlbShareMode mode) {
  osim::MachineConfig config;
  config.host_frames = 131072;
  config.seed = 11;
  config.tlb_mode = mode;
  config.daemon_period = 200000;
  osim::Machine machine(config);
  base::Rng rng(seed);

  struct FuzzVm {
    int32_t id;
    std::vector<osim::Vma*> vmas;
  };
  std::vector<FuzzVm> vms;
  std::vector<uint64_t> vpns;
  std::vector<osim::VirtualMachine::AccessResult> results;
  auto boot = [&] {
    osim::VirtualMachine& vm =
        harness::AddSystemVm(machine, SystemKind::kGemini, 8192);
    vms.push_back({vm.id(), {}});
    vms.back().vmas.push_back(&vm.guest().aspace().MapAnonymous(256));
  };
  boot();
  for (int round = 0; round < 160; ++round) {
    const uint32_t action = rng.NextBelow(10);
    FuzzVm& vm = vms[rng.NextBelow(vms.size())];
    osim::GuestKernel& guest = machine.vm(vm.id).guest();
    if (action == 0 && vms.size() < 5) {
      boot();
    } else if (action == 1 && vm.vmas.size() < 6) {
      vm.vmas.push_back(&guest.aspace().MapAnonymous(128 + rng.NextBelow(256)));
    } else if (action == 2 && vm.vmas.size() > 1) {
      const size_t victim = rng.NextBelow(vm.vmas.size());
      guest.UnmapVma(vm.vmas[victim]->id);
      vm.vmas.erase(vm.vmas.begin() + victim);
    } else if (action <= 5) {
      // Scalar accesses, possibly faulting.
      const osim::Vma* vma = vm.vmas[rng.NextBelow(vm.vmas.size())];
      for (int i = 0; i < 32; ++i) {
        machine.Access(vm.id, vma->start_page + rng.NextBelow(vma->pages),
                       rng.NextBelow(50));
      }
    } else {
      // One manual epoch over every VM, faults drained after the barrier.
      struct Pending {
        int32_t id;
        std::vector<uint64_t> rest;
      };
      std::vector<Pending> pending;
      machine.BeginEpoch();
      for (FuzzVm& lane : vms) {
        const osim::Vma* vma = lane.vmas[rng.NextBelow(lane.vmas.size())];
        vpns.clear();
        for (int i = 0; i < 64; ++i) {
          vpns.push_back(vma->start_page + rng.NextBelow(vma->pages));
        }
        if (results.size() < vpns.size()) {
          results.resize(vpns.size());
        }
        const size_t done =
            machine.EpochAccessBatch(lane.id, vpns, 25, &results);
        if (done < vpns.size()) {
          pending.push_back(
              {lane.id, {vpns.begin() + done, vpns.end()}});
        }
      }
      machine.EpochBarrier();
      for (const Pending& p : pending) {
        machine.AccessBatch(p.id, p.rest, 25, &results);
      }
    }
  }
  std::string digest;
  Append(&digest, "now", machine.Now());
  for (const FuzzVm& vm : vms) {
    const auto& tlb = machine.vm(vm.id).engine().tlb();
    Append(&digest, "h", tlb.hits());
    Append(&digest, "m", tlb.misses());
    Append(&digest, "acc", machine.vm(vm.id).accesses());
    Append(&digest, "mapped",
           machine.vm(vm.id).host_slice().table().mapped_pages());
  }
  return digest;
}

TEST(EpochExecutor, FuzzChurnReplaysBitIdentically) {
  for (const TlbShareMode mode :
       {TlbShareMode::kPrivate, TlbShareMode::kShared,
        TlbShareMode::kDynamic}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      EXPECT_EQ(FuzzRun(seed, mode), FuzzRun(seed, mode))
          << "mode=" << mmu::TlbShareModeName(mode) << " seed=" << seed;
    }
  }
}

}  // namespace
