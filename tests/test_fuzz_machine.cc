// Randomized end-to-end consistency test: drives a full machine (random
// system choice, random VMA map/unmap/access/daemon interleavings — with
// access bursts randomly issued scalar or through AccessBatch at assorted
// batch sizes — random fragmentation and pressure) and verifies global
// invariants after every burst:
//
//  * frame conservation at both layers (buddy + mapped + held == total is
//    checked inside BuddyAllocator::CheckInvariants),
//  * page tables structurally sound,
//  * every guest-mapped page translates to a host frame within bounds or
//    faults cleanly,
//  * the alignment audit agrees with a brute-force recomputation,
//  * tier residency reconciles with its counters at both layers
//    (resident == demoted - refaults - forgotten, the TierSpace contract)
//    and the metrics snapshot reports exactly the far tier's numbers.
//
// Half the seeds run with overcommit reclaim enabled (random LRU/DAMON
// policy, host sized to force watermark pressure), so demotions, refaults,
// and reclaim passes interleave with everything else.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "gemini/gemini_policy.h"
#include "harness/systems.h"
#include "metrics/alignment_audit.h"
#include "metrics/counters.h"
#include "mmu/translation_engine.h"
#include "os/machine.h"
#include "vmem/tier_space.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

struct LiveVma {
  int32_t id;
  uint64_t start;
  uint64_t pages;
};

class MachineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MachineFuzzTest, RandomOpsKeepInvariants) {
  base::Rng rng(GetParam());
  osim::MachineConfig config;
  config.host_frames = 65536;
  config.daemon_period = 20000;
  config.seed = GetParam();
  if (rng.NextBool(0.5)) {
    // Overcommit mode: a host small enough that the watermark daemon and
    // the synchronous ReclaimFrames backstop both fire (the single VM's
    // 16384 gfns overcommit the host ~2.7x), an unbounded far tier
    // (capacity 0) so allocation can always be satisfied by swapping, and
    // a random reclaim policy.
    config.host_frames = 6144;
    config.reclaim.enabled = true;
    config.reclaim.policy = rng.NextBool(0.5)
                                ? policy::ReclaimPolicyKind::kLruApprox
                                : policy::ReclaimPolicyKind::kDamon;
  }
  osim::Machine machine(config);

  const auto systems = harness::AllSystems();
  const harness::SystemKind kind =
      systems[rng.NextBelow(systems.size())];
  osim::VirtualMachine& vm =
      harness::AddSystemVm(machine, kind, 16384);
  if (rng.NextBool(0.5)) {
    machine.FragmentGuestMemory(0, 0.5 + rng.NextDouble() * 0.4);
  }
  if (rng.NextBool(0.5)) {
    machine.FragmentHostMemory(0.5 + rng.NextDouble() * 0.4);
  }

  std::vector<LiveVma> vmas;
  for (int burst = 0; burst < 60; ++burst) {
    const double dice = rng.NextDouble();
    if (dice < 0.25 && vmas.size() < 12) {
      const uint64_t pages = 1 + rng.NextBelow(3 * kPagesPerHuge);
      osim::Vma& vma = vm.guest().aspace().MapAnonymous(pages);
      vmas.push_back(LiveVma{vma.id, vma.start_page, vma.pages});
    } else if (dice < 0.35 && !vmas.empty()) {
      const size_t victim = rng.NextBelow(vmas.size());
      vm.guest().UnmapVma(vmas[victim].id);
      vmas.erase(vmas.begin() + static_cast<long>(victim));
    } else if (dice < 0.9 && !vmas.empty()) {
      // A burst of accesses into a random VMA — scalar and batched epochs
      // interleave freely, with batch sizes spanning sub-daemon-period
      // chunks up to batches long enough that promotions, demotions, and
      // reclaim fire mid-batch.  The batch path shares all machine state
      // with the scalar path, so the invariants below (and the engine
      // re-derivation check) must hold regardless of the interleaving.
      const LiveVma& vma = vmas[rng.NextBelow(vmas.size())];
      if (rng.NextBool(0.5)) {
        for (int i = 0; i < 200; ++i) {
          const uint64_t vpn = vma.start + rng.NextBelow(vma.pages);
          const auto r = machine.Access(0, vpn, 50);
          ASSERT_GT(r.cycles, 0u);
        }
      } else {
        static constexpr uint64_t kBatchSizes[] = {3, 64, 512};
        const uint64_t batch = kBatchSizes[rng.NextBelow(3)];
        std::vector<uint64_t> vpns(200);
        for (auto& v : vpns) {
          v = vma.start + rng.NextBelow(vma.pages);
        }
        std::vector<osim::VirtualMachine::AccessResult> out;
        for (size_t i = 0; i < vpns.size(); i += batch) {
          const size_t n = std::min<size_t>(batch, vpns.size() - i);
          machine.AccessBatch(0, std::span(vpns.data() + i, n), 50, &out);
          for (const auto& r : out) {
            ASSERT_GT(r.cycles, 0u);
          }
        }
      }
    } else {
      machine.AdvanceTime(config.daemon_period * (1 + rng.NextBelow(5)));
    }

    // --- Invariants ------------------------------------------------------
    vm.guest().buddy().CheckInvariants();
    machine.host().buddy().CheckInvariants();
    vm.guest().table().CheckInvariants();
    vm.host_slice().table().CheckInvariants();

    // Every guest translation must compose into a valid in-bounds host
    // frame (or be absent), and the engine's generation-tagged fast path
    // must agree with a direct re-derivation through both tables —
    // regardless of what stale or restamped TLB state the burst left
    // behind.
    for (const LiveVma& vma : vmas) {
      for (int probe = 0; probe < 8; ++probe) {
        const uint64_t vpn = vma.start + rng.NextBelow(vma.pages);
        const auto g = vm.guest().table().Lookup(vpn);
        const auto r = vm.engine().Translate(vpn);
        if (!g.has_value()) {
          ASSERT_EQ(r.status, mmu::TranslateStatus::kGuestFault);
          continue;
        }
        ASSERT_LT(g->frame, vm.guest().buddy().frame_count());
        const auto h = vm.host_slice().table().Lookup(g->frame);
        if (h.has_value()) {
          ASSERT_LT(h->frame, machine.host().buddy().frame_count());
          ASSERT_EQ(r.status, mmu::TranslateStatus::kOk);
          ASSERT_EQ(r.frame, h->frame) << "vpn " << vpn;
          ASSERT_EQ(r.well_aligned_huge,
                    g->size == base::PageSize::kHuge &&
                        h->size == base::PageSize::kHuge)
              << "vpn " << vpn;
        } else {
          ASSERT_EQ(r.status, mmu::TranslateStatus::kHostFault);
          ASSERT_EQ(r.fault_page, g->frame);
        }
      }
    }

    // Alignment audit equals brute force.
    const auto report = metrics::AuditAlignment(vm.guest().table(),
                                                vm.host_slice().table());
    uint64_t brute_pairs = 0;
    vm.guest().table().ForEachHuge([&](uint64_t, uint64_t gfn) {
      brute_pairs +=
          vm.host_slice().table().IsHugeMapped(gfn >> kHugeOrder) ? 1 : 0;
    });
    ASSERT_EQ(report.aligned_pairs, brute_pairs);

    // Tier residency reconciles with its counters at both layers.  The
    // TierSpace contract (tier_space.h) is that residency is EXACTLY the
    // demotions that neither refaulted nor were forgotten — demotion is
    // idempotent and never double-counts — and the kernel's swapped_pages
    // view must agree with the tier it demotes into.
    for (const osim::KernelBase* k :
         {static_cast<const osim::KernelBase*>(&vm.guest()),
          static_cast<const osim::KernelBase*>(&vm.host_slice())}) {
      const vmem::TierStats t = k->tier().stats(0);
      ASSERT_LE(t.refaults, t.demoted_pages);
      ASSERT_EQ(k->tier().resident(0),
                t.demoted_pages - t.refaults - t.forgotten);
      ASSERT_EQ(k->swapped_pages(), k->tier().resident(0));
    }
    // And the metrics snapshot reports exactly the shared far tier's
    // numbers (zero when overcommit is off — the per-kernel default tiers
    // never demote without reclaim pressure from the shared host tier).
    const metrics::StackSnapshot snap = metrics::Snapshot(machine, 0);
    if (const vmem::TierSpace* host_tier = machine.host_tier()) {
      const vmem::TierStats t = host_tier->stats(0);
      ASSERT_EQ(snap.tier_demoted_pages, t.demoted_pages);
      ASSERT_EQ(snap.tier_refaults, t.refaults);
      ASSERT_EQ(snap.tier_resident, host_tier->resident(0));
      ASSERT_LE(host_tier->resident(0), host_tier->peak_resident());
    } else {
      ASSERT_FALSE(config.reclaim.enabled);
      ASSERT_EQ(snap.tier_demoted_pages, 0u);
      ASSERT_EQ(snap.tier_refaults, 0u);
      ASSERT_EQ(snap.tier_resident, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzzTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006, 7007, 8008));

}  // namespace
