// Tests for the two-granularity page table.
#include "mmu/page_table.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/rng.h"
#include "base/types.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;
using base::PageSize;
using mmu::PageTable;

TEST(PageTable, EmptyLookupFails) {
  PageTable table;
  EXPECT_FALSE(table.Lookup(0).has_value());
  EXPECT_FALSE(table.Lookup(123456).has_value());
  EXPECT_EQ(table.mapped_pages(), 0u);
}

TEST(PageTable, MapBaseAndLookup) {
  PageTable table;
  table.MapBase(1000, 77);
  const auto t = table.Lookup(1000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->frame, 77u);
  EXPECT_EQ(t->size, PageSize::kBase);
  EXPECT_EQ(table.mapped_base_pages(), 1u);
  EXPECT_FALSE(table.Lookup(1001).has_value());
  table.CheckInvariants();
}

TEST(PageTable, MapHugeAndLookupEveryOffset) {
  PageTable table;
  table.MapHuge(4, 1024);  // region 4 = vpns [2048, 2560)
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    const auto t = table.Lookup((4ull << kHugeOrder) + slot);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->frame, 1024u + slot);
    EXPECT_EQ(t->size, PageSize::kHuge);
  }
  EXPECT_EQ(table.huge_leaves(), 1u);
  EXPECT_EQ(table.mapped_pages(), kPagesPerHuge);
  table.CheckInvariants();
}

TEST(PageTable, UnmapBaseReturnsFrame) {
  PageTable table;
  table.MapBase(5, 500);
  EXPECT_EQ(table.UnmapBase(5), 500u);
  EXPECT_FALSE(table.Lookup(5).has_value());
  EXPECT_EQ(table.mapped_pages(), 0u);
  table.CheckInvariants();
}

TEST(PageTable, UnmapHugeReturnsFirstFrame) {
  PageTable table;
  table.MapHuge(2, 2048);
  EXPECT_EQ(table.UnmapHuge(2), 2048u);
  EXPECT_FALSE(table.IsHugeMapped(2));
  EXPECT_EQ(table.huge_leaves(), 0u);
}

TEST(PageTable, CanPromoteInPlaceRequiresAll) {
  PageTable table;
  const uint64_t region = 3;
  const uint64_t base_vpn = region << kHugeOrder;
  // Contiguous, aligned, in order — but one page missing.
  for (uint32_t slot = 0; slot < kPagesPerHuge - 1; ++slot) {
    table.MapBase(base_vpn + slot, 512 + slot);
  }
  EXPECT_FALSE(table.CanPromoteInPlace(region));
  table.MapBase(base_vpn + kPagesPerHuge - 1, 512 + kPagesPerHuge - 1);
  EXPECT_TRUE(table.CanPromoteInPlace(region));
}

TEST(PageTable, CanPromoteInPlaceRejectsUnalignedAnchor) {
  PageTable table;
  const uint64_t base_vpn = 7ull << kHugeOrder;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    table.MapBase(base_vpn + slot, 100 + slot);  // anchor 100 not aligned
  }
  EXPECT_FALSE(table.CanPromoteInPlace(7));
}

TEST(PageTable, CanPromoteInPlaceRejectsScattered) {
  PageTable table;
  const uint64_t base_vpn = 9ull << kHugeOrder;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    table.MapBase(base_vpn + slot, 1024 + slot * 2);  // strided
  }
  EXPECT_FALSE(table.CanPromoteInPlace(9));
}

TEST(PageTable, PromoteInPlaceKeepsTranslations) {
  PageTable table;
  const uint64_t region = 5;
  const uint64_t base_vpn = region << kHugeOrder;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    table.MapBase(base_vpn + slot, 1536 + slot);
  }
  table.PromoteInPlace(region);
  EXPECT_TRUE(table.IsHugeMapped(region));
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    const auto t = table.Lookup(base_vpn + slot);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->frame, 1536u + slot);  // identical frames, new granularity
    EXPECT_EQ(t->size, PageSize::kHuge);
  }
  table.CheckInvariants();
}

TEST(PageTable, PromoteWithMigrationRemapsAndReportsOldFrames) {
  PageTable table;
  const uint64_t region = 6;
  const uint64_t base_vpn = region << kHugeOrder;
  // Scattered sparse population.
  std::set<uint64_t> old_frames;
  for (uint32_t slot = 0; slot < 100; ++slot) {
    table.MapBase(base_vpn + slot, 9000 + slot * 3);
    old_frames.insert(9000 + slot * 3);
  }
  const auto old_pages = table.PromoteWithMigration(region, 4096);
  EXPECT_EQ(old_pages.size(), 100u);
  for (const auto& [slot, frame] : old_pages) {
    EXPECT_LT(slot, 100u);
    EXPECT_TRUE(old_frames.count(frame));
  }
  EXPECT_TRUE(table.IsHugeMapped(region));
  EXPECT_EQ(table.Lookup(base_vpn)->frame, 4096u);
  EXPECT_EQ(table.Lookup(base_vpn + 511)->frame, 4096u + 511);
  table.CheckInvariants();
}

TEST(PageTable, DemoteSplitsOntoSameFrames) {
  PageTable table;
  table.MapHuge(8, 512);
  table.Demote(8);
  EXPECT_FALSE(table.IsHugeMapped(8));
  EXPECT_EQ(table.PresentBasePages(8), kPagesPerHuge);
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    const auto t = table.Lookup((8ull << kHugeOrder) + slot);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->frame, 512u + slot);
    EXPECT_EQ(t->size, PageSize::kBase);
  }
  table.CheckInvariants();
}

TEST(PageTable, PromoteDemoteRoundTrip) {
  PageTable table;
  const uint64_t region = 11;
  const uint64_t base_vpn = region << kHugeOrder;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    table.MapBase(base_vpn + slot, 2048 + slot);
  }
  table.PromoteInPlace(region);
  table.Demote(region);
  EXPECT_TRUE(table.CanPromoteInPlace(region));  // round trip
  EXPECT_EQ(table.mapped_base_pages(), kPagesPerHuge);
  table.CheckInvariants();
}

TEST(PageTable, AccessCountersBumpAndDecay) {
  PageTable table;
  table.MapBase(0, 1);
  table.BumpAccess(0);
  table.BumpAccess(0);
  table.BumpAccess(0);
  EXPECT_EQ(table.AccessCount(0), 3u);
  table.DecayAccessCounts();
  EXPECT_EQ(table.AccessCount(0), 1u);
  table.DecayAccessCounts();
  EXPECT_EQ(table.AccessCount(0), 0u);
  EXPECT_EQ(table.AccessCount(99), 0u);
}

TEST(PageTable, ForEachHugeVisitsAll) {
  PageTable table;
  table.MapHuge(1, 512);
  table.MapHuge(4, 2048);
  table.MapBase(0, 3);
  std::set<uint64_t> regions;
  table.ForEachHuge([&](uint64_t region, uint64_t frame) {
    regions.insert(region);
    EXPECT_EQ(frame % kPagesPerHuge, 0u);
  });
  EXPECT_EQ(regions, (std::set<uint64_t>{1, 4}));
}

TEST(PageTable, ForEachBaseRegionReportsCounts) {
  PageTable table;
  table.MapBase(0, 1);
  table.MapBase(1, 2);
  table.MapBase(513, 5);
  std::map<uint64_t, uint32_t> seen;
  table.ForEachBaseRegion(
      [&](uint64_t region, uint32_t present) { seen[region] = present; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 2u);
  EXPECT_EQ(seen[1], 1u);
}

TEST(PageTable, BaseFrameQueries) {
  PageTable table;
  table.MapBase(5, 42);
  EXPECT_EQ(table.BaseFrame(0, 5).value(), 42u);
  EXPECT_FALSE(table.BaseFrame(0, 6).has_value());
  EXPECT_FALSE(table.BaseFrame(1, 5).has_value());
}

TEST(PageTable, GenerationStartsAtZeroAndBumpsOnEveryMutation) {
  PageTable table;
  const uint64_t region = 12;
  const uint64_t base_vpn = region << kHugeOrder;
  EXPECT_EQ(table.generation(region), 0u);
  EXPECT_EQ(table.generation(1u << 20), 0u);  // unseen region reads as zero

  uint64_t gen = table.generation(region);
  table.MapBase(base_vpn, 1024);
  EXPECT_GT(table.generation(region), gen);

  gen = table.generation(region);
  table.UnmapBase(base_vpn);
  EXPECT_GT(table.generation(region), gen);

  gen = table.generation(region);
  table.MapHuge(region, 2048);
  EXPECT_GT(table.generation(region), gen);

  gen = table.generation(region);
  table.Demote(region);
  EXPECT_GT(table.generation(region), gen);

  gen = table.generation(region);
  table.PromoteInPlace(region);
  EXPECT_GT(table.generation(region), gen);

  gen = table.generation(region);
  table.UnmapHuge(region);
  EXPECT_GT(table.generation(region), gen);
}

TEST(PageTable, PromoteWithMigrationBumpsGeneration) {
  PageTable table;
  const uint64_t region = 2;
  table.MapBase((region << kHugeOrder) + 7, 999);
  const uint64_t gen = table.generation(region);
  table.PromoteWithMigration(region, 4096);
  EXPECT_GT(table.generation(region), gen);
}

TEST(PageTable, GenerationSurvivesFullUnmap) {
  // Slots are never recycled: a region's generation must keep growing across
  // unmap/remap cycles so a TLB entry stamped before the unmap can never
  // alias a later remap of the same region.
  PageTable table;
  const uint64_t region = 3;
  const uint64_t base_vpn = region << kHugeOrder;
  table.MapBase(base_vpn, 100);
  table.UnmapBase(base_vpn);
  const uint64_t gen_after_unmap = table.generation(region);
  EXPECT_GT(gen_after_unmap, 0u);
  table.MapBase(base_vpn, 200);
  EXPECT_GT(table.generation(region), gen_after_unmap);
  table.CheckInvariants();
}

TEST(PageTable, GenerationIsPerRegion) {
  PageTable table;
  table.MapBase(0, 1);  // region 0
  EXPECT_GT(table.generation(0), 0u);
  EXPECT_EQ(table.generation(1), 0u);
  table.MapHuge(5, 512);
  EXPECT_EQ(table.generation(1), 0u);
  EXPECT_GT(table.generation(5), 0u);
}

TEST(PageTable, LookupAndReadsDoNotBumpGeneration) {
  PageTable table;
  table.MapBase(10, 50);
  const uint64_t gen = table.generation(0);
  table.Lookup(10);
  table.BaseFrame(0, 10);
  table.PresentBasePages(0);
  table.IsHugeMapped(0);
  table.BumpAccess(0);  // access-bit tracking is not a mapping mutation
  EXPECT_EQ(table.generation(0), gen);
}

// Property: random map/unmap/promote/demote sequences keep Lookup
// consistent with a reference map.
class PageTablePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageTablePropertyTest, MatchesReference) {
  base::Rng rng(GetParam());
  PageTable table;
  constexpr uint64_t kRegions = 8;
  // Reference: per-vpn frame (base granularity), or region-level huge.
  std::map<uint64_t, uint64_t> ref_base;  // vpn -> frame
  std::map<uint64_t, uint64_t> ref_huge;  // region -> first frame
  uint64_t next_block = 0;                // allocator of fresh aligned blocks

  for (int step = 0; step < 600; ++step) {
    const uint64_t region = rng.NextBelow(kRegions);
    const double dice = rng.NextDouble();
    if (dice < 0.4) {  // map a base page if possible
      const uint64_t vpn = (region << kHugeOrder) + rng.NextBelow(kPagesPerHuge);
      if (ref_huge.count(region) == 0 && ref_base.count(vpn) == 0) {
        const uint64_t frame = 1000000 + step;
        table.MapBase(vpn, frame);
        ref_base[vpn] = frame;
      }
    } else if (dice < 0.55) {  // map huge if region empty
      bool region_used = ref_huge.count(region) != 0;
      for (const auto& [vpn, f] : ref_base) {
        if (vpn >> kHugeOrder == region) {
          region_used = true;
        }
      }
      if (!region_used) {
        const uint64_t frame = (++next_block) * kPagesPerHuge;
        table.MapHuge(region, frame);
        ref_huge[region] = frame;
      }
    } else if (dice < 0.7) {  // unmap a random base page of the region
      for (auto it = ref_base.begin(); it != ref_base.end(); ++it) {
        if (it->first >> kHugeOrder == region) {
          EXPECT_EQ(table.UnmapBase(it->first), it->second);
          ref_base.erase(it);
          break;
        }
      }
    } else if (dice < 0.8 && ref_huge.count(region)) {  // demote
      table.Demote(region);
      const uint64_t frame = ref_huge[region];
      ref_huge.erase(region);
      for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
        ref_base[(region << kHugeOrder) + slot] = frame + slot;
      }
    } else if (ref_huge.count(region)) {  // unmap huge
      EXPECT_EQ(table.UnmapHuge(region), ref_huge[region]);
      ref_huge.erase(region);
    }

    // Verify random probes.
    for (int probe = 0; probe < 8; ++probe) {
      const uint64_t vpn =
          (rng.NextBelow(kRegions) << kHugeOrder) + rng.NextBelow(kPagesPerHuge);
      const auto got = table.Lookup(vpn);
      const uint64_t r = vpn >> kHugeOrder;
      if (ref_huge.count(r)) {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->frame, ref_huge[r] + (vpn & (kPagesPerHuge - 1)));
      } else if (ref_base.count(vpn)) {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->frame, ref_base[vpn]);
      } else {
        ASSERT_FALSE(got.has_value());
      }
    }
    table.CheckInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTablePropertyTest,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
