// Tests for the huge bucket (retention and reuse of freed well-aligned
// regions).
#include "gemini/huge_bucket.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace {

using base::kPagesPerHuge;
using gemini::HugeBucket;

class BucketTest : public ::testing::Test {
 protected:
  BucketTest()
      : buddy_(16 * kPagesPerHuge),
        frames_(16 * kPagesPerHuge),
        bucket_(&buddy_, &frames_, /*owner=*/0, /*retention=*/1000) {}

  // Simulates a region the workload owned and is now freeing: allocated in
  // the buddy, about to be handed to the bucket instead of freed.
  uint64_t MakeOwnedRegion(uint64_t region_index) {
    const uint64_t frame = region_index * kPagesPerHuge;
    EXPECT_TRUE(buddy_.AllocateAt(frame, kPagesPerHuge));
    return frame;
  }

  vmem::BuddyAllocator buddy_;
  vmem::FrameSpace frames_;
  HugeBucket bucket_;
};

TEST_F(BucketTest, DepositRetainsFrames) {
  const uint64_t frame = MakeOwnedRegion(2);
  bucket_.Deposit(frame, /*now=*/0);
  EXPECT_EQ(bucket_.held_count(), 1u);
  EXPECT_EQ(bucket_.deposits(), 1u);
  // Frames stay out of the buddy while retained.
  EXPECT_FALSE(buddy_.IsRangeFree(frame, kPagesPerHuge));
  EXPECT_EQ(frames_.CountUse(vmem::FrameUse::kBucketed), kPagesPerHuge);
}

TEST_F(BucketTest, TakeAnyReleasesForTargetedAllocation) {
  const uint64_t frame = MakeOwnedRegion(2);
  bucket_.Deposit(frame, 0);
  const uint64_t taken = bucket_.TakeAny();
  EXPECT_EQ(taken, frame);
  EXPECT_EQ(bucket_.reuses(), 1u);
  EXPECT_EQ(bucket_.held_count(), 0u);
  EXPECT_TRUE(buddy_.AllocateAt(frame, kPagesPerHuge));
}

TEST_F(BucketTest, TakeAnyEmptyReturnsInvalid) {
  EXPECT_EQ(bucket_.TakeAny(), vmem::kInvalidFrame);
}

TEST_F(BucketTest, ExpireRetentionReleasesOldRegions) {
  bucket_.Deposit(MakeOwnedRegion(1), /*now=*/0);     // expires at 1000
  bucket_.Deposit(MakeOwnedRegion(2), /*now=*/500);   // expires at 1500
  EXPECT_EQ(bucket_.ExpireRetention(1200), 1u);
  EXPECT_EQ(bucket_.held_count(), 1u);
  EXPECT_TRUE(buddy_.IsRangeFree(1 * kPagesPerHuge, kPagesPerHuge));
  EXPECT_FALSE(buddy_.IsRangeFree(2 * kPagesPerHuge, kPagesPerHuge));
}

TEST_F(BucketTest, ReleaseSomeUnderPressure) {
  bucket_.Deposit(MakeOwnedRegion(1), 0);
  bucket_.Deposit(MakeOwnedRegion(2), 0);
  bucket_.Deposit(MakeOwnedRegion(3), 0);
  EXPECT_EQ(bucket_.ReleaseSome(2), 2u);
  EXPECT_EQ(bucket_.held_count(), 1u);
}

TEST_F(BucketTest, ReleaseAllEmptiesAndFrees) {
  bucket_.Deposit(MakeOwnedRegion(1), 0);
  bucket_.Deposit(MakeOwnedRegion(2), 0);
  bucket_.ReleaseAll();
  EXPECT_EQ(bucket_.held_count(), 0u);
  EXPECT_EQ(buddy_.free_frames(), 16 * kPagesPerHuge);
  EXPECT_EQ(frames_.CountUse(vmem::FrameUse::kBucketed), 0u);
}

TEST_F(BucketTest, DestructorReleasesHeldRegions) {
  {
    HugeBucket scoped(&buddy_, &frames_, 0, 1000);
    const uint64_t frame = MakeOwnedRegion(5);
    scoped.Deposit(frame, 0);
    EXPECT_FALSE(buddy_.IsRangeFree(frame, kPagesPerHuge));
  }
  EXPECT_EQ(buddy_.free_frames(), 16 * kPagesPerHuge);
}

TEST_F(BucketTest, UnalignedDepositAborts) {
  EXPECT_DEATH(bucket_.Deposit(kPagesPerHuge + 3, 0), "");
}

}  // namespace
