// Tests for the TLB utility monitor (mmu/tlb_utility_monitor.h) and its
// rendering (metrics/interference_matrix.h):
//
//  * Unit tests of the shadow-tag sampler (the stack-depth histogram IS
//    the marginal-utility curve) and of displaced-record attribution,
//    including every record-invalidation path (reinsert, shootdown,
//    range shootdown, selective invalidation, flush).
//  * A differential against a brute-force full-LRU reference: a real Tlb
//    with an attached monitor is driven by fuzzed lookup / insert /
//    shootdown / invalidate / flush streams while the reference replays
//    the same stream with no packing or sampling cleverness; the utility
//    curves must match exactly.  Runs over shared and way-partitioned
//    arrangements and over sampling strides, and checks on the way that
//    the attribution matrix reconciles with the per-VM displaced_by
//    counters.
//  * Machine-level behavior in all three GEMINI_TLB_MODE arrangements:
//    private has no monitor and zero attribution (the historical fast
//    path), shared attributes the victim's misses to the aggressor, and
//    partitioned never blames the peer (windows confine evictions).
//  * Exact goldens for the rendered fig17/fig18 interference-matrix and
//    utility-curve tables.
#include "mmu/tlb_utility_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "harness/systems.h"
#include "metrics/interference_matrix.h"
#include "mmu/tlb.h"
#include "mmu/tlb_domain.h"
#include "os/machine.h"
#include "os/virtual_machine.h"

namespace {

using base::kHugeOrder;
using base::PageSize;
using mmu::TlbShareMode;
using mmu::TlbUtilityMonitor;
using osim::VirtualMachine;

TlbUtilityMonitor::Config SmallMonitor(uint32_t stride = 1) {
  TlbUtilityMonitor::Config mc;
  mc.sets = 4;
  mc.ways = 4;
  mc.sample_stride = stride;
  mc.displaced_slots = 64;
  return mc;
}

// --- Shadow-stack sampler unit tests ---------------------------------------

TEST(UtilityMonitor, ShadowStackBuildsUtilityCurve) {
  TlbUtilityMonitor mon(SmallMonitor());
  // Keys 0, 4, 8 all index set 0 (sets = 4).  Stream on VM 0:
  //   A B A C B A  ->  misses A B, hit A@1, miss C, hit B@2, hit A@2.
  const uint64_t A = 0, B = 4, C = 8;
  mon.OnInsert(A, PageSize::kBase, 0);
  mon.OnInsert(B, PageSize::kBase, 0);
  mon.OnAccess(A, PageSize::kBase, 0);
  mon.OnInsert(C, PageSize::kBase, 0);
  mon.OnAccess(B, PageSize::kBase, 0);
  mon.OnAccess(A, PageSize::kBase, 0);

  const TlbUtilityMonitor::VmUtility& u = mon.utility(0);
  ASSERT_EQ(u.way_hits.size(), 4u);
  EXPECT_EQ(u.way_hits[0], 0u);
  EXPECT_EQ(u.way_hits[1], 1u);
  EXPECT_EQ(u.way_hits[2], 2u);
  EXPECT_EQ(u.way_hits[3], 0u);
  EXPECT_EQ(u.shadow_misses, 3u);
  EXPECT_EQ(u.shadow_hits(), 3u);
  EXPECT_EQ(u.sampled_accesses(), 6u);

  // Curve readouts: with 1 way nothing reuses, with 2 ways only the A@1
  // hit lands, full depth recovers half the stream.
  EXPECT_DOUBLE_EQ(mon.HitFractionWithWays(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(mon.HitFractionWithWays(0, 2), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(mon.HitFractionWithWays(0, 4), 0.5);
  EXPECT_EQ(mon.MinWaysForHitFraction(0, 1.0), 3u);
  EXPECT_EQ(mon.MinWaysForHitFraction(0, 0.3), 2u);

  // A vmid never seen reads as all-zero, not UB.
  EXPECT_EQ(mon.utility(9).sampled_accesses(), 0u);
  EXPECT_EQ(mon.HitFractionWithWays(9, 4), 0.0);
  EXPECT_EQ(mon.MinWaysForHitFraction(9, 0.9), 0u);
}

TEST(UtilityMonitor, StrideSkipsUnsampledSets) {
  TlbUtilityMonitor mon(SmallMonitor(/*stride=*/2));
  // Set 0 is sampled, set 1 is not (stride 2 over 4 sets).
  mon.OnInsert(0, PageSize::kBase, 0);  // set 0: counted
  mon.OnInsert(1, PageSize::kBase, 0);  // set 1: ignored
  mon.OnAccess(0, PageSize::kBase, 0);  // set 0: depth-0 hit
  mon.OnAccess(1, PageSize::kBase, 0);  // set 1: ignored
  const TlbUtilityMonitor::VmUtility& u = mon.utility(0);
  EXPECT_EQ(u.sampled_accesses(), 2u);
  EXPECT_EQ(u.way_hits[0], 1u);
  EXPECT_EQ(u.shadow_misses, 1u);
}

TEST(UtilityMonitor, BaseAndHugeKeysAreDistinctStackEntries) {
  TlbUtilityMonitor mon(SmallMonitor());
  // Same numeric key, different granularities: both live in the stack.
  mon.OnInsert(0, PageSize::kBase, 0);
  mon.OnInsert(0, PageSize::kHuge, 0);
  mon.OnAccess(0, PageSize::kBase, 0);  // must hit at depth 1, not 0
  const TlbUtilityMonitor::VmUtility& u = mon.utility(0);
  EXPECT_EQ(u.way_hits[0], 0u);
  EXPECT_EQ(u.way_hits[1], 1u);
  EXPECT_EQ(u.shadow_misses, 2u);
}

// --- Displaced-record attribution unit tests -------------------------------

TEST(UtilityMonitor, AttributesMissToRecordedEvictorOnce) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnEviction(/*key=*/3, PageSize::kBase, /*victim=*/0, /*evictor=*/1);
  EXPECT_EQ(mon.AttributeMiss(/*vpn=*/3, 0), 1);
  EXPECT_EQ(mon.displaced(0, 1), 1u);
  EXPECT_EQ(mon.displaced(0, 0), 0u);
  EXPECT_EQ(mon.displaced(1, 0), 0u);
  // The record is consumed: a second miss on the key is cold.
  EXPECT_EQ(mon.AttributeMiss(3, 0), -1);
  EXPECT_EQ(mon.displaced(0, 1), 1u);
}

TEST(UtilityMonitor, SelfDisplacementChargesTheVictimItself) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnEviction(7, PageSize::kBase, 0, 0);
  EXPECT_EQ(mon.AttributeMiss(7, 0), 0);
  EXPECT_EQ(mon.displaced(0, 0), 1u);
}

TEST(UtilityMonitor, HugeRecordMatchesAnyVpnOfTheRegion) {
  TlbUtilityMonitor mon(SmallMonitor());
  // The evicted entry was the huge entry of region 0; a miss on any page
  // of the region would have been served by it.
  mon.OnEviction(/*key=*/0, PageSize::kHuge, 0, 1);
  EXPECT_EQ(mon.AttributeMiss(/*vpn=*/5, 0), 1);
  EXPECT_EQ(mon.displaced(0, 1), 1u);
}

TEST(UtilityMonitor, RecordsAreScopedToTheVictimVm) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnEviction(3, PageSize::kBase, 0, 1);
  // VM 1 missing the same key finds nothing: the record names VM 0's entry.
  EXPECT_EQ(mon.AttributeMiss(3, 1), -1);
  EXPECT_EQ(mon.AttributeMiss(3, 0), 1);
}

TEST(UtilityMonitor, ReinsertClearsTheStaleRecord) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnEviction(9, PageSize::kBase, 0, 1);
  mon.OnInsert(9, PageSize::kBase, 0);  // mapping present again
  EXPECT_EQ(mon.AttributeMiss(9, 0), -1);
}

TEST(UtilityMonitor, ShootdownClearsRecordsAndShadowEntries) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnEviction(3, PageSize::kBase, 0, 1);
  mon.OnShootdown(3, 0);
  EXPECT_EQ(mon.AttributeMiss(3, 0), -1);

  // The shot-down key is also gone from the shadow stack: the next access
  // is a shadow miss again, not a depth-0 hit.
  mon.OnInsert(4, PageSize::kBase, 0);
  mon.OnAccess(4, PageSize::kBase, 0);
  mon.OnShootdown(4, 0);
  mon.OnAccess(4, PageSize::kBase, 0);
  const TlbUtilityMonitor::VmUtility& u = mon.utility(0);
  EXPECT_EQ(u.way_hits[0], 1u);
  EXPECT_EQ(u.shadow_misses, 2u);
}

TEST(UtilityMonitor, RangeShootdownClearsOnlyOverlappingRecords) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnEviction(3, PageSize::kBase, 0, 1);
  mon.OnShootdownRange(/*vpn=*/100, /*pages=*/8, 0);  // no overlap
  EXPECT_EQ(mon.AttributeMiss(3, 0), 1);
  mon.OnEviction(3, PageSize::kBase, 0, 1);
  mon.OnShootdownRange(/*vpn=*/0, /*pages=*/8, 0);  // covers key 3
  EXPECT_EQ(mon.AttributeMiss(3, 0), -1);
  // A huge record overlaps through its whole region.
  mon.OnEviction(/*key=*/1, PageSize::kHuge, 0, 1);
  mon.OnShootdownRange(base::kPagesPerHuge + 5, 1, 0);
  EXPECT_EQ(mon.AttributeMiss(base::kPagesPerHuge + 7, 0), -1);
}

TEST(UtilityMonitor, InvalidateVmClearsOnlyThatVmsRecords) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnEviction(3, PageSize::kBase, 0, 1);
  mon.OnEviction(4, PageSize::kBase, 1, 0);
  mon.OnInvalidateVm(0);
  EXPECT_EQ(mon.AttributeMiss(3, 0), -1);  // VM 0's record dropped
  EXPECT_EQ(mon.AttributeMiss(4, 1), 0);   // VM 1's record survives
}

TEST(UtilityMonitor, FlushClearsRecordsButKeepsHistograms) {
  TlbUtilityMonitor mon(SmallMonitor());
  mon.OnInsert(0, PageSize::kBase, 0);
  mon.OnAccess(0, PageSize::kBase, 0);
  mon.OnEviction(3, PageSize::kBase, 0, 1);
  mon.OnFlush();
  EXPECT_EQ(mon.AttributeMiss(3, 0), -1);
  // Histograms are cumulative counters and survive the flush; the stack
  // is empty, so the key re-misses.
  EXPECT_EQ(mon.utility(0).way_hits[0], 1u);
  mon.OnAccess(0, PageSize::kBase, 0);
  EXPECT_EQ(mon.utility(0).shadow_misses, 2u);
}

// --- Differential vs brute-force full-LRU reference ------------------------

// The specification of the sampler, written with none of the monitor's
// packing/striding tricks: per-VM, per-sampled-set MRU vectors of
// (key, is_huge) pairs searched linearly.
class ShadowReference {
 public:
  ShadowReference(uint32_t sets, uint32_t ways, uint32_t stride)
      : sets_(sets), ways_(ways), stride_(stride) {}

  void Access(uint64_t key, PageSize size, uint16_t vmid) {
    const uint32_t set = static_cast<uint32_t>(key) & (sets_ - 1);
    if ((set & (stride_ - 1)) != 0) {
      return;
    }
    Vm& vm = Slot(vmid);
    std::vector<Entry>& stack = vm.stacks[set];
    const Entry e{key, size == PageSize::kHuge};
    for (size_t d = 0; d < stack.size(); ++d) {
      if (stack[d] == e) {
        ++vm.way_hits[d];
        stack.erase(stack.begin() + static_cast<ptrdiff_t>(d));
        stack.insert(stack.begin(), e);
        return;
      }
    }
    ++vm.shadow_misses;
    stack.insert(stack.begin(), e);
    if (stack.size() > ways_) {
      stack.pop_back();
    }
  }

  void Shootdown(uint64_t vpn, uint16_t vmid) {
    Vm& vm = Slot(vmid);
    Remove(vm, vpn, Entry{vpn, false});
    const uint64_t region = vpn >> kHugeOrder;
    Remove(vm, region, Entry{region, true});
  }

  void InvalidateVm(uint16_t vmid) { Slot(vmid).stacks.clear(); }

  void Flush() {
    for (auto& [vmid, vm] : vms_) {
      vm.stacks.clear();
    }
  }

  void ExpectMatches(const TlbUtilityMonitor& mon, uint16_t vmid,
                     const std::string& context) {
    Vm& vm = Slot(vmid);
    const TlbUtilityMonitor::VmUtility& u = mon.utility(vmid);
    ASSERT_EQ(u.way_hits.size(), vm.way_hits.size());
    for (size_t d = 0; d < vm.way_hits.size(); ++d) {
      ASSERT_EQ(u.way_hits[d], vm.way_hits[d])
          << "vm " << vmid << " depth " << d << " " << context;
    }
    ASSERT_EQ(u.shadow_misses, vm.shadow_misses)
        << "vm " << vmid << " " << context;
  }

 private:
  using Entry = std::pair<uint64_t, bool>;  // (key, is_huge)
  struct Vm {
    std::map<uint32_t, std::vector<Entry>> stacks;
    std::vector<uint64_t> way_hits;
    uint64_t shadow_misses = 0;
  };

  Vm& Slot(uint16_t vmid) {
    Vm& vm = vms_[vmid];
    if (vm.way_hits.empty()) {
      vm.way_hits.assign(ways_, 0);
    }
    return vm;
  }
  void Remove(Vm& vm, uint64_t key, const Entry& e) {
    const uint32_t set = static_cast<uint32_t>(key) & (sets_ - 1);
    if ((set & (stride_ - 1)) != 0) {
      return;
    }
    std::vector<Entry>& stack = vm.stacks[set];
    stack.erase(std::remove(stack.begin(), stack.end(), e), stack.end());
  }

  uint32_t sets_;
  uint32_t ways_;
  uint32_t stride_;
  std::map<uint16_t, Vm> vms_;
};

struct DifferentialParam {
  bool partitioned;
  uint32_t stride;
  uint64_t seed;
};

class UtilityMonitorDifferentialTest
    : public ::testing::TestWithParam<DifferentialParam> {};

// Drives a real Tlb + monitor with a fuzzed stream of every operation that
// reaches the monitor's hooks, mirrored into the brute-force reference.
// The utility curves must match exactly at every checkpoint, and the
// attribution matrix must reconcile with the Tlb's displaced_by counters.
TEST_P(UtilityMonitorDifferentialTest, MatchesBruteForceFullLruReference) {
  const DifferentialParam param = GetParam();
  mmu::TlbConfig tc;
  tc.sets = 16;
  tc.ways = 4;
  mmu::Tlb tlb(tc);
  TlbUtilityMonitor::Config mc;
  mc.sets = tc.sets;
  mc.ways = tc.ways;
  mc.sample_stride = param.stride;
  mc.displaced_slots = 256;
  TlbUtilityMonitor mon(mc);
  tlb.AttachUtilityMonitor(&mon);
  for (uint16_t vmid = 0; vmid < 2; ++vmid) {
    tlb.RegisterVm(vmid);
    mon.RegisterVm(vmid);
  }
  if (param.partitioned) {
    tlb.SetVmWays(0, 0, 2);
    tlb.SetVmWays(1, 2, 2);
  }
  ShadowReference ref(tc.sets, tc.ways, param.stride);

  base::Rng rng(param.seed);
  const uint64_t vpn_space = 4 * base::kPagesPerHuge;
  std::string last_op;
  for (int i = 0; i < 4000; ++i) {
    const uint16_t vmid = static_cast<uint16_t>(rng.NextBelow(2));
    const uint64_t vpn = rng.NextBelow(vpn_space);
    const double r = rng.NextDouble();
    last_op = "iter " + std::to_string(i) + " r=" + std::to_string(r) +
              " vmid=" + std::to_string(vmid) + " vpn=" + std::to_string(vpn);
    if (r < 0.55) {
      // The engine's pattern: probe, fill on miss.
      const mmu::Tlb::LookupResult result = tlb.Lookup(vpn, vmid);
      if (result.hit) {
        const uint64_t key =
            result.size == PageSize::kHuge ? vpn >> kHugeOrder : vpn;
        ref.Access(key, result.size, vmid);
      } else {
        const PageSize size =
            rng.NextBool(0.2) ? PageSize::kHuge : PageSize::kBase;
        tlb.Insert(vpn, size, vpn + 1, mmu::Tlb::Stamp{}, vmid);
        const uint64_t key =
            size == PageSize::kHuge ? vpn >> kHugeOrder : vpn;
        ref.Access(key, size, vmid);
      }
    } else if (r < 0.75) {
      // Direct insert (update-in-place or fill): OnInsert fires exactly
      // once with the key either way.
      const PageSize size =
          rng.NextBool(0.2) ? PageSize::kHuge : PageSize::kBase;
      tlb.Insert(vpn, size, vpn + 1, mmu::Tlb::Stamp{}, vmid);
      const uint64_t key = size == PageSize::kHuge ? vpn >> kHugeOrder : vpn;
      ref.Access(key, size, vmid);
    } else if (r < 0.85) {
      tlb.ShootdownPage(vpn, vmid);
      ref.Shootdown(vpn, vmid);
    } else if (r < 0.90) {
      // Small ranges take the per-page path (pages < total entries).
      tlb.ShootdownRange(vpn, 4, vmid);
      for (uint64_t p = 0; p < 4; ++p) {
        ref.Shootdown(vpn + p, vmid);
      }
    } else if (r < 0.97) {
      // Probe without filling: a hit still samples, a miss stays cold (or
      // consumes a displaced record).
      const mmu::Tlb::LookupResult result = tlb.Lookup(vpn, vmid);
      if (result.hit) {
        const uint64_t key =
            result.size == PageSize::kHuge ? vpn >> kHugeOrder : vpn;
        ref.Access(key, result.size, vmid);
      }
    } else if (r < 0.99) {
      tlb.InvalidateVm(vmid);
      ref.InvalidateVm(vmid);
    } else {
      tlb.Flush();
      ref.Flush();
    }

    {
      for (uint16_t v = 0; v < 2; ++v) {
        ref.ExpectMatches(mon, v, last_op);
        // Attribution reconciliation: every matrix increment bumped
        // exactly one displaced_by counter, and attribution never
        // exceeds counted misses.
        const mmu::Tlb::VmTlbCounters& c = tlb.vm_counters(v);
        ASSERT_EQ(mon.displaced(v, v), c.displaced_by_self) << "vm " << v;
        ASSERT_EQ(mon.displaced(v, static_cast<uint16_t>(1 - v)),
                  c.displaced_by_other)
            << "vm " << v;
        ASSERT_LE(c.displaced_by_self + c.displaced_by_other, c.misses)
            << "vm " << v;
        if (param.partitioned) {
          // Way windows make cross-VM eviction impossible, so nothing
          // can ever be blamed on the peer.
          ASSERT_EQ(c.displaced_by_other, 0u) << "vm " << v;
        }
      }
    }
  }
  // The stream genuinely exercised both layers.
  EXPECT_GT(mon.utility(0).sampled_accesses(), 0u);
  EXPECT_GT(mon.utility(1).sampled_accesses(), 0u);
  if (!param.partitioned) {
    EXPECT_GT(tlb.vm_counters(0).displaced_by_other +
                  tlb.vm_counters(1).displaced_by_other,
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arrangements, UtilityMonitorDifferentialTest,
    ::testing::Values(DifferentialParam{false, 1, 11},
                      DifferentialParam{false, 4, 12},
                      DifferentialParam{true, 1, 13},
                      DifferentialParam{true, 4, 14}));

// --- Machine-level behavior across the three sharing modes -----------------

// Victim loops a TLB-fitting set while an aggressor streams; same shape as
// the tlb_domain interference tests, sized down for speed.
void DriveVictimAggressor(osim::Machine& machine, uint64_t steps) {
  VirtualMachine& victim = machine.vm(0);
  VirtualMachine& aggressor = machine.vm(1);
  const uint64_t victim_pages = 512;
  const uint64_t victim_base =
      victim.guest().aspace().MapAnonymous(victim_pages).start_page;
  const uint64_t agg_base =
      aggressor.guest().aspace().MapAnonymous(8192).start_page;
  for (uint64_t i = 0; i < steps; ++i) {
    machine.Access(0, victim_base + (i % victim_pages), 50);
    for (uint64_t k = 0; k < 8; ++k) {
      machine.Access(1, agg_base + ((i * 8 + k) % 8192), 50);
    }
  }
}

osim::MachineConfig TwoVmConfig(TlbShareMode mode) {
  osim::MachineConfig config;
  config.host_frames = 65536;
  config.daemon_period = 20000;
  config.seed = 7;
  config.tlb_mode = mode;
  return config;
}

TEST(UtilityMonitorMachine, PrivateModeHasNoMonitorAndZeroAttribution) {
  osim::Machine machine(TwoVmConfig(TlbShareMode::kPrivate));
  harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  DriveVictimAggressor(machine, 2000);
  EXPECT_EQ(machine.tlb_domain().utility_monitor(), nullptr);
  for (int32_t id = 0; id < 2; ++id) {
    const mmu::TlbView& tlb = machine.vm(id).engine().tlb();
    EXPECT_EQ(tlb.displaced_by_self(), 0u) << "vm " << id;
    EXPECT_EQ(tlb.displaced_by_other(), 0u) << "vm " << id;
  }
  // Private arrays render nothing: the historical stdout stays clean.
  const metrics::InterferenceReport report = metrics::BuildInterferenceReport(
      machine.tlb_domain(), {{0, "vm0"}, {1, "vm1"}});
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(metrics::RenderInterferenceMatrix("t", {{"cell", &report}}), "");
  EXPECT_EQ(metrics::RenderUtilityCurves("t", {{"cell", &report}}), "");
}

TEST(UtilityMonitorMachine, SharedModeAttributesCrossVmDisplacement) {
  osim::Machine machine(TwoVmConfig(TlbShareMode::kShared));
  harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  DriveVictimAggressor(machine, 4000);
  const TlbUtilityMonitor* mon = machine.tlb_domain().utility_monitor();
  ASSERT_NE(mon, nullptr);

  const mmu::TlbView& v0 = machine.vm(0).engine().tlb();
  const mmu::TlbView& v1 = machine.vm(1).engine().tlb();
  // The aggressor's stream displaces the victim's fitting working set, and
  // the displaced-record layer proves it per miss.
  EXPECT_GT(v0.displaced_by_other(), 0u);
  // Attribution is a lower bound on misses for both VMs.
  EXPECT_LE(v0.displaced_by_self() + v0.displaced_by_other(), v0.misses());
  EXPECT_LE(v1.displaced_by_self() + v1.displaced_by_other(), v1.misses());
  // The matrix and the per-VM counters are two views of the same events.
  EXPECT_EQ(mon->displaced(0, 0), v0.displaced_by_self());
  EXPECT_EQ(mon->displaced(0, 1), v0.displaced_by_other());
  EXPECT_EQ(mon->displaced(1, 1), v1.displaced_by_self());
  EXPECT_EQ(mon->displaced(1, 0), v1.displaced_by_other());
  // The sampler saw the stream.
  EXPECT_GT(mon->utility(0).sampled_accesses(), 0u);
  EXPECT_GT(mon->utility(1).sampled_accesses(), 0u);

  // The harness-facing report carries the same numbers.
  const metrics::InterferenceReport report = metrics::BuildInterferenceReport(
      machine.tlb_domain(), {{0, "vm0"}, {1, "vm1"}});
  ASSERT_EQ(report.vms.size(), 2u);
  EXPECT_EQ(report.vms[0].displaced_by,
            (std::vector<uint64_t>{mon->displaced(0, 0), mon->displaced(0, 1)}));
  EXPECT_EQ(report.vms[0].tlb_misses, v0.misses());
  EXPECT_EQ(report.vms[0].way_hits, mon->utility(0).way_hits);
  const std::string rendered =
      metrics::RenderInterferenceMatrix("m", {{"cell", &report}});
  EXPECT_NE(rendered.find("vm0"), std::string::npos);
  EXPECT_NE(rendered.find("by vm1"), std::string::npos);
}

TEST(UtilityMonitorMachine, PartitionedModeNeverBlamesThePeer) {
  osim::Machine machine(TwoVmConfig(TlbShareMode::kPartitioned));
  harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  DriveVictimAggressor(machine, 4000);
  const TlbUtilityMonitor* mon = machine.tlb_domain().utility_monitor();
  ASSERT_NE(mon, nullptr);
  for (int32_t id = 0; id < 2; ++id) {
    const mmu::TlbView& tlb = machine.vm(id).engine().tlb();
    EXPECT_EQ(tlb.displaced_by_other(), 0u) << "vm " << id;
    EXPECT_EQ(mon->displaced(static_cast<uint16_t>(id),
                             static_cast<uint16_t>(1 - id)),
              0u)
        << "vm " << id;
  }
  // Windows confine but do not eliminate pressure: the streaming
  // aggressor displaces itself inside its own window.
  EXPECT_GT(machine.vm(1).engine().tlb().displaced_by_self(), 0u);
}

// --- Rendered-table goldens ------------------------------------------------

metrics::InterferenceReport GoldenReport() {
  metrics::InterferenceReport report;
  metrics::VmInterferenceRow vm0;
  vm0.label = "vm0";
  vm0.displaced_by = {3, 40};
  vm0.way_hits = {8, 4, 2, 1};
  vm0.shadow_misses = 5;
  vm0.tlb_misses = 50;
  metrics::VmInterferenceRow vm1;
  vm1.label = "vm1";
  vm1.displaced_by = {10, 0};
  vm1.way_hits = {10, 0, 0, 0};
  vm1.shadow_misses = 10;
  vm1.tlb_misses = 25;
  report.vms.push_back(std::move(vm0));
  report.vms.push_back(std::move(vm1));
  return report;
}

TEST(InterferenceGolden, MatrixTableRendersExactly) {
  const metrics::InterferenceReport report = GoldenReport();
  const std::string rendered = metrics::RenderInterferenceMatrix(
      "fig17 interference golden", {{"A+B", &report}});
  const std::string expected =
      "\n== fig17 interference golden ==\n"
      "pair  victim  by vm0  by vm1  unattrib  misses\n"
      "----------------------------------------------\n"
      "A+B   vm0     3       40      7         50    \n"
      "A+B   vm1     10      0       15        25    \n";
  EXPECT_EQ(rendered, expected);
}

// Past `dense_vm_limit` VMs the matrix switches to the sparse triplet
// render: per victim, only the top-k evictors as "vmE:count", descending
// count with ties to the lower evictor id, "-" when nothing is attributed.
// The same report stays dense under the default limit, so every existing
// small-sweep artifact is unchanged.
TEST(InterferenceGolden, SparseTripletRenderPastDenseVmLimit) {
  metrics::InterferenceReport report;
  metrics::VmInterferenceRow vm0;
  vm0.label = "vm0";
  vm0.displaced_by = {4, 9, 9};  // tie: vm1 before vm2, vm0 truncated
  vm0.tlb_misses = 30;
  metrics::VmInterferenceRow vm1;
  vm1.label = "vm1";
  vm1.displaced_by = {0, 0, 0};  // nothing attributed
  vm1.tlb_misses = 5;
  metrics::VmInterferenceRow vm2;
  vm2.label = "vm2";
  vm2.displaced_by = {1, 2, 3};
  vm2.tlb_misses = 6;
  report.vms.push_back(std::move(vm0));
  report.vms.push_back(std::move(vm1));
  report.vms.push_back(std::move(vm2));

  // Default limit (64): three VMs render the dense per-evictor columns.
  const std::string dense =
      metrics::RenderInterferenceMatrix("rack golden", {{"rack", &report}});
  EXPECT_NE(dense.find("by vm2"), std::string::npos);
  EXPECT_EQ(dense.find("top evictors"), std::string::npos);

  const std::string sparse = metrics::RenderInterferenceMatrix(
      "rack golden", {{"rack", &report}}, /*dense_vm_limit=*/2, /*top_k=*/2);
  const std::string expected =
      "\n== rack golden ==\n"
      "pair  victim  top evictors  unattrib  misses\n"
      "--------------------------------------------\n"
      "rack  vm0     vm1:9 vm2:9   8         30    \n"
      "rack  vm1     -             5         5     \n"
      "rack  vm2     vm2:3 vm1:2   0         6     \n";
  EXPECT_EQ(sparse, expected);
}

TEST(InterferenceGolden, UtilityCurveTableRendersExactly) {
  const metrics::InterferenceReport report = GoldenReport();
  const std::string rendered = metrics::RenderUtilityCurves(
      "fig17 utility golden", {{"A+B", &report}});
  const std::string expected =
      "\n== fig17 utility golden ==\n"
      "pair  vm   sampled  miss%  w<=1  w<=2  w<=3  w<=4\n"
      "-------------------------------------------------\n"
      "A+B   vm0  20       25%    40%   60%   70%   75% \n"
      "A+B   vm1  20       50%    50%   50%   50%   50% \n";
  EXPECT_EQ(rendered, expected);
}

}  // namespace
