// Tests for the trace subsystem: ring semantics, zero-cost disabled path,
// Perfetto JSON validity, sampler boundary determinism, and the
// batching-invariance guarantee (a trace is a pure function of the access
// sequence, not of how the driver chunks simulated time).
#include "trace/tracer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/types.h"
#include "gemini/gemini_policy.h"
#include "os/machine.h"
#include "trace/perfetto.h"
#include "trace/sampler.h"
#include "trace/session.h"

namespace {

using base::kPagesPerHuge;
using trace::Event;
using trace::EventKind;
using trace::Tracer;

TEST(Tracer, DisabledTracerOwnsNoBufferAndIgnoresEmit) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.capacity(), 0u);
  tracer.Emit(EventKind::kBuddySplit, base::Layer::kGuest, 0, 1, 2, 3);
  EXPECT_EQ(tracer.capacity(), 0u);  // still no allocation
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.emitted(), 0u);
}

TEST(Tracer, RecordsEventsWithClockAndFields) {
  Tracer tracer;
  base::Cycles clock = 42;
  tracer.SetClock(&clock);
  tracer.Enable(16);
  tracer.Emit(EventKind::kPromoteMigrate, base::Layer::kHost, 3, 7, 8, 9);
  clock = 43;
  tracer.Emit(EventKind::kDemote, base::Layer::kGuest, 1, 5);
  ASSERT_EQ(tracer.size(), 2u);
  std::vector<Event> events;
  tracer.ForEach([&](const Event& e) { events.push_back(e); });
  EXPECT_EQ(events[0].ts, 42u);
  EXPECT_EQ(events[0].kind, EventKind::kPromoteMigrate);
  EXPECT_EQ(events[0].layer, base::Layer::kHost);
  EXPECT_EQ(events[0].vm_id, 3);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 8u);
  EXPECT_EQ(events[0].c, 9u);
  EXPECT_EQ(events[1].ts, 43u);
  EXPECT_EQ(events[1].a, 5u);
  EXPECT_EQ(events[1].c, 0u);
}

TEST(Tracer, RingOverflowDropsOldestAndCountsDrops) {
  Tracer tracer;
  tracer.Enable(8);
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.Emit(EventKind::kDaemonTick, base::Layer::kGuest, 0, i);
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  EXPECT_EQ(tracer.emitted(), 20u);
  // The retained window is the most recent 8 events, oldest first.
  std::vector<uint64_t> seen;
  tracer.ForEach([&](const Event& e) { seen.push_back(e.a); });
  ASSERT_EQ(seen.size(), 8u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 12 + i);
  }
}

TEST(Tracer, ReEnableClearsRingAndCounters) {
  Tracer tracer;
  tracer.Enable(4);
  for (int i = 0; i < 10; ++i) {
    tracer.Emit(EventKind::kDaemonTick, base::Layer::kGuest, 0);
  }
  tracer.Enable(2);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.capacity(), 2u);
}

TEST(Tracer, EveryKindHasAUniqueName) {
  std::set<std::string> names;
  for (int k = 0; k < trace::kEventKindCount; ++k) {
    const char* name = trace::EventName(static_cast<EventKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

// --- Minimal JSON parser, enough to validate the Perfetto export ---------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool String() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      return String();
    }
    return Number();
  }
  bool Object() {
    if (!Consume('{')) {
      return false;
    }
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    do {
      if (!String() || !Consume(':') || !Value()) {
        return false;
      }
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) {
      return false;
    }
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    do {
      if (!Value()) {
        return false;
      }
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(Perfetto, JsonIsParseableAndCarriesEvents) {
  Tracer tracer;
  base::Cycles clock = 100;
  tracer.SetClock(&clock);
  tracer.Enable(16);
  tracer.Emit(EventKind::kBuddySplit, base::Layer::kGuest, 0, 512, 11, 9);
  tracer.Emit(EventKind::kTimeoutChange, base::Layer::kHost, 1, 44000, 40000);
  const std::string json = trace::PerfettoTraceJson(tracer, nullptr);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"buddy_split\""), std::string::npos);
  EXPECT_NE(json.find("\"booking_timeout_change\""), std::string::npos);
  EXPECT_NE(json.find("\"order_found\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

// --- Machine-level tests --------------------------------------------------

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 131072;
  config.daemon_period = 50000;
  config.seed = 21;
  return config;
}

// Runs a small Gemini workload with `work` cycles of compute per access,
// delivered either inline with the access or split into `chunks` separate
// AdvanceTime calls; returns the serialized trace + series.
std::string TracedRun(int chunks) {
  osim::Machine machine(SmallConfig());
  machine.tracer().Enable(1 << 16);
  auto sampler = std::make_unique<trace::StackSampler>(&machine);
  trace::StackSampler* sampler_raw = sampler.get();
  machine.AddTask(std::move(sampler), 25000);
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(8 * kPagesPerHuge);
  constexpr base::Cycles kWork = 3000;
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < vma.pages; ++p) {
      if (chunks <= 1) {
        machine.Access(0, vma.start_page + p, kWork);
      } else {
        machine.Access(0, vma.start_page + p, 0);
        for (int c = 0; c < chunks; ++c) {
          machine.AdvanceTime(kWork / chunks);
        }
      }
    }
  }
  std::ostringstream out;
  machine.tracer().ForEach([&](const Event& e) {
    out << static_cast<int>(e.kind) << ' ' << e.ts << ' '
        << static_cast<int>(e.layer) << ' ' << e.vm_id << ' ' << e.a << ' '
        << e.b << ' ' << e.c << '\n';
  });
  out << sampler_raw->ToCsv();
  return out.str();
}

TEST(TraceDeterminism, SamplerFiresAtExactPeriodBoundaries) {
  osim::Machine machine(SmallConfig());
  machine.tracer().Enable(1 << 14);
  auto sampler = std::make_unique<trace::StackSampler>(&machine);
  trace::StackSampler* raw = sampler.get();
  machine.AddTask(std::move(sampler), 25000);
  gemini::InstallGeminiVm(machine, 32768);
  // Advance in ragged, boundary-misaligned steps.
  machine.AdvanceTime(37013);
  machine.AdvanceTime(55555);
  machine.AdvanceTime(100001);
  ASSERT_FALSE(raw->samples().empty());
  for (const trace::SamplePoint& p : raw->samples()) {
    EXPECT_EQ(p.ts % 25000, 0u) << "sample not on a period boundary";
  }
}

TEST(TraceDeterminism, DaemonTicksObserveBoundaryTimeNotOvershoot) {
  osim::Machine machine(SmallConfig());
  machine.tracer().Enable(1 << 14);
  gemini::InstallGeminiVm(machine, 32768);
  // Cross the first daemon boundary with a large overshoot: the tick event
  // must be stamped with the boundary, not the overshot clock.
  machine.AdvanceTime(machine.config().daemon_period + 31337);
  bool saw_tick = false;
  machine.tracer().ForEach([&](const Event& e) {
    if (e.kind == EventKind::kDaemonTick) {
      saw_tick = true;
      EXPECT_EQ(e.ts, machine.config().daemon_period);
    }
  });
  EXPECT_TRUE(saw_tick);
}

TEST(TraceDeterminism, TraceInvariantUnderWorkCycleChunking) {
  // Satellite regression: the same access sequence with the same simulated
  // durations must yield byte-identical traces however the durations are
  // delivered (one batched Access vs many AdvanceTime slices).
  const std::string one_chunk = TracedRun(1);
  const std::string three_chunks = TracedRun(3);
  EXPECT_EQ(one_chunk, three_chunks);
  EXPECT_NE(one_chunk.find("booking_timeout_cycles"), std::string::npos);
}

TEST(TraceDeterminism, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(TracedRun(1), TracedRun(1));
}

// Schema drift guard: every series row must carry exactly as many columns
// as the header names — a SamplePoint field threaded into only one of
// Run()/ToCsv() misaligns every downstream plot silently.
TEST(TraceDeterminism, SamplerCsvHeaderMatchesRowColumnCounts) {
  osim::Machine machine(SmallConfig());
  auto sampler = std::make_unique<trace::StackSampler>(&machine);
  trace::StackSampler* raw = sampler.get();
  machine.AddTask(std::move(sampler), 25000);
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  for (uint64_t p = 0; p < vma.pages; ++p) {
    machine.Access(0, vma.start_page + p, 1000);
  }
  ASSERT_FALSE(raw->samples().empty());
  std::istringstream csv(raw->ToCsv());
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_NE(header.find("displaced_by_self"), std::string::npos);
  EXPECT_NE(header.find("lat_p99"), std::string::npos);
  const auto commas = [](const std::string& line) {
    return std::count(line.begin(), line.end(), ',');
  };
  const auto expected = commas(header);
  std::string row;
  size_t rows = 0;
  while (std::getline(csv, row)) {
    EXPECT_EQ(commas(row), expected) << "row " << rows << ": " << row;
    ++rows;
  }
  EXPECT_GT(rows, 0u);
}

TEST(Session, SanitizeFileStemNormalizes) {
  EXPECT_EQ(trace::SanitizeFileStem("Fig. 9 (mean latency)"),
            "fig_9_mean_latency");
  EXPECT_EQ(trace::SanitizeFileStem("Gemini"), "gemini");
  EXPECT_EQ(trace::SanitizeFileStem("###"), "trace");
}

TEST(Session, ConfigFromEnvRoundTrips) {
  ::setenv("GEMINI_TRACE", "/tmp/traces", 1);
  ::setenv("GEMINI_TRACE_INTERVAL", "5000", 1);
  const trace::TraceConfig on = trace::TraceConfigFromEnv("stem");
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.dir, "/tmp/traces");
  EXPECT_EQ(on.stem, "stem");
  EXPECT_EQ(on.sample_period, 5000u);
  ::unsetenv("GEMINI_TRACE");
  ::unsetenv("GEMINI_TRACE_INTERVAL");
  const trace::TraceConfig off = trace::TraceConfigFromEnv("stem");
  EXPECT_FALSE(off.enabled);
}

TEST(Session, WriteTraceFilesProducesParseableArtifacts) {
  osim::Machine machine(SmallConfig());
  trace::TraceConfig config;
  config.enabled = true;
  config.dir = ::testing::TempDir();
  config.stem = "trace_test_cell";
  config.sample_period = 25000;
  trace::StackSampler* sampler = trace::SetupTracing(machine, config);
  ASSERT_NE(sampler, nullptr);
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  for (uint64_t p = 0; p < vma.pages; ++p) {
    machine.Access(0, vma.start_page + p, 1000);
  }
  trace::WriteTraceFiles(config, machine, sampler);

  std::ifstream json_in(config.dir + "/" + config.stem + ".trace.json");
  ASSERT_TRUE(json_in.good());
  std::stringstream json;
  json << json_in.rdbuf();
  EXPECT_TRUE(JsonChecker(json.str()).Valid());
  std::ifstream csv_in(config.dir + "/" + config.stem + ".series.csv");
  ASSERT_TRUE(csv_in.good());
  std::string header;
  ASSERT_TRUE(std::getline(csv_in, header));
  EXPECT_EQ(header.rfind("ts_cycles,vm,guest_coverage", 0), 0u);
}

}  // namespace
