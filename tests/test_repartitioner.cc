// Tests for the dynamic TLB way repartitioner (mmu/tlb_repartitioner.h).
//
// Four layers of coverage:
//
//  * Brute-force differential: AllocateWays fuzzed over randomized
//    marginal-utility curves (idle, noisy, decaying, spiked — deliberately
//    including non-concave shapes where greedy climbing is wrong) and held
//    to the exact exhaustive-search optimum, including the deterministic
//    lexicographically-largest tie-break, on well over 1000 instances.
//  * Allocation properties: windows sum to the full associativity, respect
//    the min-ways floor, and the solver is deterministic.
//  * Tlb window-move properties under fuzz: after every full prefix
//    relayout no VM has a valid entry outside its window
//    (entry_count_outside_window — the integrity probe), dropped-entry
//    counts reconcile exactly with the repartition_evictions counters and
//    the residency deltas, and an unchanged window is a free no-op.
//  * Policy ticks against a live monitor, and an end-to-end kDynamic
//    machine: skewed load moves ways to the hot VM, hysteresis holds
//    near-ties still, idle intervals change nothing, and two identical
//    runs produce identical counters, windows, and repartition counts.
#include "mmu/tlb_repartitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "harness/systems.h"
#include "mmu/tlb.h"
#include "mmu/tlb_domain.h"
#include "mmu/tlb_utility_monitor.h"
#include "os/machine.h"
#include "os/virtual_machine.h"

namespace {

using base::PageSize;
using mmu::Tlb;
using mmu::TlbConfig;
using mmu::TlbRepartitioner;
using mmu::TlbUtilityMonitor;
using osim::VirtualMachine;

uint64_t CumHits(const std::vector<uint64_t>& marginal, uint32_t ways) {
  uint64_t total = 0;
  for (uint32_t d = 0; d < ways && d < marginal.size(); ++d) {
    total += marginal[d];
  }
  return total;
}

// --- Brute-force differential ----------------------------------------------

struct RefBest {
  int64_t total = -1;
  std::vector<uint32_t> alloc;
};

// Exhaustive reference: enumerate every composition of `remaining` ways
// over VMs i..n-1 (each >= min_ways) and keep the best total, breaking
// ties toward the lexicographically-largest allocation vector — the same
// contract AllocateWays documents.
void Enumerate(const std::vector<std::vector<uint64_t>>& marginal,
               uint32_t min_ways, size_t i, uint32_t remaining, int64_t acc,
               std::vector<uint32_t>* cur, RefBest* best) {
  const size_t n = marginal.size();
  if (i == n) {
    if (remaining == 0 &&
        (acc > best->total ||
         (acc == best->total && *cur > best->alloc))) {
      best->total = acc;
      best->alloc = *cur;
    }
    return;
  }
  const uint32_t reserve = min_ways * static_cast<uint32_t>(n - i - 1);
  for (uint32_t w = min_ways; w + reserve <= remaining; ++w) {
    cur->push_back(w);
    Enumerate(marginal, min_ways, i + 1, remaining - w,
              acc + static_cast<int64_t>(CumHits(marginal[i], w)), cur, best);
    cur->pop_back();
  }
}

// One randomized curve: idle VMs, uniform noise, roughly-decaying reuse,
// and a non-concave spike (all reuse at one stack depth — a looping scan,
// exactly the shape where greedy marginal climbing picks wrong).
std::vector<uint64_t> FuzzCurve(base::Rng& rng, uint32_t ways) {
  std::vector<uint64_t> curve(ways, 0);
  switch (rng.NextBelow(4)) {
    case 0:
      break;  // idle: all zero
    case 1:
      for (auto& v : curve) {
        v = rng.NextBelow(100);
      }
      break;
    case 2:
      for (uint32_t d = 0; d < ways; ++d) {
        curve[d] = rng.NextBelow(200) >> (d / 2);
      }
      break;
    default: {
      const uint32_t spike = static_cast<uint32_t>(rng.NextBelow(ways));
      for (uint32_t d = 0; d < ways; ++d) {
        curve[d] = d == spike ? 200 + rng.NextBelow(400) : rng.NextBelow(8);
      }
      break;
    }
  }
  return curve;
}

TEST(RepartitionerAllocation, MatchesExhaustiveSearchOnFuzzedInstances) {
  base::Rng rng(4242);
  int uneven = 0;  // instances whose optimum is not the even split
  for (int iter = 0; iter < 1200; ++iter) {
    const uint32_t n = 2 + static_cast<uint32_t>(rng.NextBelow(3));  // 2..4
    const uint32_t ways =
        4 + static_cast<uint32_t>(rng.NextBelow(13));  // 4..16 >= n
    const uint32_t min_ways =
        1 + static_cast<uint32_t>(rng.NextBelow(ways / n));
    std::vector<std::vector<uint64_t>> marginal(n);
    for (auto& curve : marginal) {
      curve = FuzzCurve(rng, ways);
    }

    const std::vector<uint32_t> got =
        TlbRepartitioner::AllocateWays(marginal, ways, min_ways);

    RefBest best;
    std::vector<uint32_t> cur;
    Enumerate(marginal, min_ways, 0, ways, 0, &cur, &best);
    ASSERT_GE(best.total, 0) << "iter " << iter;
    ASSERT_EQ(got, best.alloc) << "iter " << iter << " n=" << n
                               << " ways=" << ways << " min=" << min_ways;

    // Structural properties, re-checked on every instance.
    uint32_t sum = 0;
    for (const uint32_t w : got) {
      EXPECT_GE(w, min_ways) << "iter " << iter;
      sum += w;
    }
    EXPECT_EQ(sum, ways) << "iter " << iter;
    EXPECT_EQ(TlbRepartitioner::AllocateWays(marginal, ways, min_ways), got)
        << "determinism, iter " << iter;

    if (ways % n == 0 &&
        got != std::vector<uint32_t>(n, ways / n)) {
      ++uneven;
    }
  }
  // The fuzzer must actually exercise skewed optima, or the differential
  // would be vacuously comparing even splits.
  EXPECT_GT(uneven, 100);
}

TEST(RepartitionerAllocation, TiesBreakTowardLowerVmIds) {
  // All-zero and all-equal curves make every split an optimum; the
  // contract picks the lexicographically-largest vector, so VM 0 takes
  // everything above the floor.
  const std::vector<std::vector<uint64_t>> idle(3,
                                                std::vector<uint64_t>(6, 0));
  EXPECT_EQ(TlbRepartitioner::AllocateWays(idle, 6, 1),
            (std::vector<uint32_t>{4, 1, 1}));
  EXPECT_EQ(TlbRepartitioner::AllocateWays(idle, 6, 2),
            (std::vector<uint32_t>{2, 2, 2}));
  const std::vector<std::vector<uint64_t>> flat(2,
                                                std::vector<uint64_t>(4, 7));
  EXPECT_EQ(TlbRepartitioner::AllocateWays(flat, 4, 1),
            (std::vector<uint32_t>{3, 1}));
}

TEST(RepartitionerAllocation, PrefersTheVmWhoseCurveKeepsGrowing) {
  // VM 0 saturates after 2 ways; VM 1 gains at every depth.  The solver
  // must hand VM 1 the surplus even though VM 0 has the larger total.
  const std::vector<std::vector<uint64_t>> marginal = {
      {500, 500, 0, 0, 0, 0},
      {100, 100, 100, 100, 100, 100},
  };
  EXPECT_EQ(TlbRepartitioner::AllocateWays(marginal, 6, 1),
            (std::vector<uint32_t>{2, 4}));
}

// --- Tlb window-move properties under fuzz ---------------------------------

TEST(RepartitionerTlbFuzz, RelayoutsNeverLeaveCrossWindowEntries) {
  TlbConfig config;
  config.sets = 16;
  config.ways = 8;
  Tlb tlb(config);
  constexpr uint16_t kVms = 3;
  tlb.SetVmWays(0, 0, 3);
  tlb.SetVmWays(1, 3, 3);
  tlb.SetVmWays(2, 6, 2);

  base::Rng rng(99);
  for (int round = 0; round < 300; ++round) {
    for (int k = 0; k < 40; ++k) {
      const uint16_t vmid = static_cast<uint16_t>(rng.NextBelow(kVms));
      const uint64_t vpn = rng.NextBelow(2048);
      if (rng.NextBool(0.25)) {
        tlb.Insert(vpn, PageSize::kHuge, vpn >> base::kHugeOrder, {}, vmid);
      } else if (!tlb.Lookup(vpn, vmid).hit) {
        tlb.Insert(vpn, PageSize::kBase, vpn, {}, vmid);
      }
    }

    // Random full prefix relayout, each VM >= 1 way.
    uint32_t w[kVms];
    w[0] = 1 + static_cast<uint32_t>(rng.NextBelow(config.ways - 2));
    w[1] = 1 + static_cast<uint32_t>(rng.NextBelow(config.ways - w[0] - 1));
    w[2] = config.ways - w[0] - w[1];
    const uint32_t before_total = tlb.entry_count();
    uint32_t dropped_total = 0;
    uint32_t begin = 0;
    for (uint16_t vmid = 0; vmid < kVms; ++vmid) {
      const uint64_t evictions_before =
          tlb.vm_counters(vmid).repartition_evictions;
      const bool unchanged = tlb.vm_way_begin(vmid) == begin &&
                             tlb.vm_way_count(vmid) == w[vmid];
      const uint32_t dropped = tlb.RepartitionVmWays(vmid, begin, w[vmid]);
      if (unchanged) {
        EXPECT_EQ(dropped, 0u) << "round " << round;
      }
      EXPECT_EQ(tlb.vm_counters(vmid).repartition_evictions,
                evictions_before + dropped)
          << "round " << round;
      dropped_total += dropped;
      begin += w[vmid];
    }
    ASSERT_EQ(begin, config.ways);

    // The integrity probe: no VM retains a valid entry outside its window.
    for (uint16_t vmid = 0; vmid < kVms; ++vmid) {
      ASSERT_EQ(tlb.entry_count_outside_window(vmid), 0u)
          << "round " << round << " vm " << vmid;
      ASSERT_EQ(tlb.vm_way_count(vmid), w[vmid]);
    }
    // Residency reconciles: drops are the only entries that disappeared,
    // and per-VM / per-set tilings still sum to the total.
    ASSERT_EQ(tlb.entry_count(), before_total - dropped_total)
        << "round " << round;
    uint32_t per_vm = 0;
    for (uint16_t vmid = 0; vmid < kVms; ++vmid) {
      per_vm += tlb.entry_count(vmid);
    }
    ASSERT_EQ(per_vm, tlb.entry_count());
    uint32_t occupancy = 0;
    for (uint32_t s = 0; s < config.sets; ++s) {
      occupancy += tlb.set_occupancy(s);
    }
    ASSERT_EQ(occupancy, tlb.entry_count());
  }
}

// --- Policy ticks against a live monitor -----------------------------------

struct MonitoredTlb {
  TlbConfig config;
  Tlb tlb;
  TlbUtilityMonitor monitor;

  explicit MonitoredTlb(uint32_t sets, uint32_t ways)
      : config{sets, ways},
        tlb(config),
        monitor(TlbUtilityMonitor::Config{sets, ways, 1, 1024}) {
    tlb.AttachUtilityMonitor(&monitor);
    tlb.SetVmWays(0, 0, ways / 2);
    tlb.SetVmWays(1, ways / 2, ways / 2);
  }

  // One access as the translation path would issue it: probe, fill on miss.
  void Access(uint64_t vpn, uint16_t vmid) {
    if (!tlb.Lookup(vpn, vmid).hit) {
      tlb.InsertMiss(vpn, PageSize::kBase, vpn, {}, vmid);
    }
  }
};

TEST(Repartitioner, SkewedLoadMovesWaysTowardTheHotVm) {
  MonitoredTlb m(16, 8);
  TlbRepartitioner::Config rc;
  rc.min_ways = 1;
  rc.hysteresis = 0.01;
  TlbRepartitioner rep(&m.tlb, &m.monitor, rc);

  // VM 0 sweeps 96 pages (6 per set — its reuse needs 6 ways); VM 1 loops
  // over 16 (1 per set — saturated by a single way).
  for (int i = 0; i < 4000; ++i) {
    m.Access(i % 96, 0);
    m.Access(i % 16, 1);
  }
  rep.Tick({0, 1});

  EXPECT_EQ(rep.ticks(), 1u);
  EXPECT_EQ(rep.repartitions(), 1u);
  EXPECT_GE(m.tlb.vm_way_count(0), 6u);
  EXPECT_GE(m.tlb.vm_way_count(1), 1u);
  EXPECT_EQ(m.tlb.vm_way_count(0) + m.tlb.vm_way_count(1), 8u);
  EXPECT_EQ(m.tlb.vm_way_begin(0), 0u);
  EXPECT_EQ(m.tlb.vm_way_begin(1), m.tlb.vm_way_count(0));
  EXPECT_EQ(m.tlb.entry_count_outside_window(0), 0u);
  EXPECT_EQ(m.tlb.entry_count_outside_window(1), 0u);
}

TEST(Repartitioner, MinWaysFloorProtectsTheIdleVm) {
  MonitoredTlb m(16, 8);
  TlbRepartitioner::Config rc;
  rc.min_ways = 3;
  rc.hysteresis = 0.0;
  TlbRepartitioner rep(&m.tlb, &m.monitor, rc);

  // VM 1 never runs; an unfloored allocator would strip it to one way.
  // VM 0 sweeps 5 pages per set, so the 5-way window the floor leaves
  // available is exactly enough to turn its misses into hits.
  for (int i = 0; i < 4000; ++i) {
    m.Access(i % 80, 0);
  }
  rep.Tick({0, 1});
  EXPECT_EQ(rep.repartitions(), 1u);
  EXPECT_EQ(m.tlb.vm_way_count(0), 5u);
  EXPECT_EQ(m.tlb.vm_way_count(1), 3u);
}

TEST(Repartitioner, HysteresisHoldsNearTiesStill) {
  MonitoredTlb m(16, 8);
  TlbRepartitioner::Config rc;
  rc.min_ways = 1;
  rc.hysteresis = 0.05;
  TlbRepartitioner rep(&m.tlb, &m.monitor, rc);

  // Symmetric load: both VMs loop one page per set.  The even split is
  // already (an) optimum; the lexicographic tie-break would prefer handing
  // VM 0 the surplus, but the move gains nothing, so hysteresis must veto
  // it — a near-tie repartition would pay evictions for zero benefit.
  for (int i = 0; i < 4000; ++i) {
    m.Access(i % 16, 0);
    m.Access(i % 16, 1);
  }
  rep.Tick({0, 1});
  EXPECT_EQ(rep.ticks(), 1u);
  EXPECT_EQ(rep.repartitions(), 0u);
  EXPECT_EQ(rep.evictions(), 0u);
  EXPECT_EQ(m.tlb.vm_way_count(0), 4u);
  EXPECT_EQ(m.tlb.vm_way_count(1), 4u);
}

TEST(Repartitioner, IdleIntervalLeavesWindowsAlone) {
  MonitoredTlb m(16, 8);
  TlbRepartitioner::Config rc;
  rc.min_ways = 1;
  rc.hysteresis = 0.01;
  TlbRepartitioner rep(&m.tlb, &m.monitor, rc);

  for (int i = 0; i < 4000; ++i) {
    m.Access(i % 96, 0);
    m.Access(i % 16, 1);
  }
  rep.Tick({0, 1});
  ASSERT_EQ(rep.repartitions(), 1u);
  const uint32_t w0 = m.tlb.vm_way_count(0);

  // Nothing ran since the last tick: the interval curves are all zero, so
  // the tick has no basis to move anything (and must not, e.g., decay
  // back to an even split and thrash).
  rep.Tick({0, 1});
  EXPECT_EQ(rep.ticks(), 2u);
  EXPECT_EQ(rep.repartitions(), 1u);
  EXPECT_EQ(m.tlb.vm_way_count(0), w0);
}

// --- End-to-end kDynamic machine -------------------------------------------

struct MachineOutcome {
  uint64_t hits[2] = {};
  uint64_t misses[2] = {};
  uint32_t ways[2] = {};
  uint64_t repartitions = 0;
  uint64_t repartition_evictions = 0;

  bool operator==(const MachineOutcome&) const = default;
};

MachineOutcome RunDynamicMachine(uint32_t min_ways) {
  osim::MachineConfig config;
  config.host_frames = 65536;
  config.daemon_period = 20000;
  config.seed = 11;
  config.tlb_mode = mmu::TlbShareMode::kDynamic;
  config.tlb_repart_min_ways = min_ways;
  osim::Machine machine(config);
  VirtualMachine& big =
      harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  VirtualMachine& small =
      harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  const uint64_t big_base =
      big.guest().aspace().MapAnonymous(896).start_page;
  const uint64_t small_base =
      small.guest().aspace().MapAnonymous(64).start_page;

  // Big VM sweeps 7 pages per TLB set — one more way than the even split
  // gives it turns its cyclic reuse from all-miss to all-hit; small loops
  // well under one way's worth.  Interleaved accesses advance the clock
  // past many daemon periods, so the repartition task fires repeatedly
  // mid-run.
  for (uint64_t i = 0; i < 20000; ++i) {
    machine.Access(0, big_base + (i % 896), 50);
    machine.Access(1, small_base + (i % 64), 50);
  }

  const mmu::TlbDomain& domain = machine.tlb_domain();
  const mmu::Tlb* shared = domain.shared_tlb();
  EXPECT_NE(shared, nullptr);
  MachineOutcome out;
  out.repartitions = domain.repartition_count();
  for (uint16_t vmid = 0; vmid < 2; ++vmid) {
    out.hits[vmid] = shared->vm_counters(vmid).hits;
    out.misses[vmid] = shared->vm_counters(vmid).misses;
    out.ways[vmid] = shared->vm_way_count(vmid);
    out.repartition_evictions +=
        shared->vm_counters(vmid).repartition_evictions;
    EXPECT_EQ(shared->entry_count_outside_window(vmid), 0u);
  }
  EXPECT_EQ(out.ways[0] + out.ways[1], shared->config().ways);
  return out;
}

TEST(RepartitionerMachine, DynamicModeAdaptsAndReplaysBitIdentically) {
  const MachineOutcome a = RunDynamicMachine(1);
  EXPECT_GE(a.repartitions, 1u);
  EXPECT_GT(a.repartition_evictions, 0u);
  // The big VM's working set dwarfs the small one's; the adapted split
  // must reflect that.
  EXPECT_GT(a.ways[0], a.ways[1]);
  EXPECT_GE(a.ways[1], 1u);

  // Same config, same seed, same access stream: byte-identical outcome.
  const MachineOutcome b = RunDynamicMachine(1);
  EXPECT_EQ(a, b);
}

TEST(RepartitionerMachine, ConfiguredMinWaysFloorHoldsEndToEnd) {
  const MachineOutcome a = RunDynamicMachine(5);
  EXPECT_GE(a.repartitions, 1u);
  EXPECT_GE(a.ways[0], 5u);
  EXPECT_GE(a.ways[1], 5u);
}

}  // namespace
