// Tests for the workload generators, catalog, and driver.
#include <gtest/gtest.h>

#include <set>

#include "harness/systems.h"
#include "os/machine.h"
#include "policy/base_only.h"
#include "workload/access_pattern.h"
#include "workload/catalog.h"
#include "workload/driver.h"

namespace {

using workload::AccessPattern;
using workload::AccessStream;
using workload::AllocPattern;
using workload::Kind;
using workload::WorkloadSpec;

TEST(AccessStream, UniformStaysInBounds) {
  WorkloadSpec spec;
  spec.access = AccessPattern::kUniform;
  spec.working_set_pages = 1000;
  AccessStream stream(spec, 1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(stream.Next(1000), 1000u);
  }
}

TEST(AccessStream, UniformCoversActiveSetOnly) {
  WorkloadSpec spec;
  spec.access = AccessPattern::kUniform;
  spec.working_set_pages = 1000;
  AccessStream stream(spec, 2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(stream.Next(10), 10u);
  }
}

TEST(AccessStream, ZipfGrowsWithActiveSet) {
  WorkloadSpec spec;
  spec.access = AccessPattern::kZipf;
  spec.zipf_theta = 0.9;
  spec.working_set_pages = 4096;
  AccessStream stream(spec, 3);
  for (uint64_t active : {64ull, 256ull, 1024ull, 4096ull}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(stream.Next(active), active);
    }
  }
}

TEST(AccessStream, ScanMixIsMostlySequential) {
  WorkloadSpec spec;
  spec.access = AccessPattern::kScanMix;
  spec.scan_jump_prob = 0.01;
  spec.working_set_pages = 10000;
  AccessStream stream(spec, 4);
  uint64_t prev = stream.Next(10000);
  int sequential = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t cur = stream.Next(10000);
    if (cur == (prev + 1) % 10000) {
      ++sequential;
    }
    prev = cur;
  }
  EXPECT_GT(sequential, 950);
}

TEST(Catalog, SixteenCleanSlateWorkloads) {
  const auto catalog = workload::CleanSlateCatalog();
  EXPECT_EQ(catalog.size(), 16u);
  std::set<std::string> names;
  for (const auto& spec : catalog) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GE(spec.working_set_pages, 1024u);
    EXPECT_GE(spec.ops, 10000u);
    names.insert(spec.name);
  }
  EXPECT_EQ(names.size(), 16u) << "duplicate workload names";
}

TEST(Catalog, MotivationSubset) {
  const auto motivation = workload::MotivationCatalog();
  ASSERT_EQ(motivation.size(), 4u);
  EXPECT_EQ(motivation[0].name, "Canneal");
  EXPECT_EQ(motivation[3].name, "Specjbb");
}

TEST(Catalog, InsensitiveWorkloadsMarked) {
  for (const auto& spec : workload::InsensitiveCatalog()) {
    EXPECT_FALSE(spec.tlb_sensitive);
  }
}

TEST(Catalog, SpecByNameFindsEveryEntry) {
  for (const auto& spec : workload::CleanSlateCatalog()) {
    EXPECT_EQ(workload::SpecByName(spec.name).name, spec.name);
  }
  EXPECT_EQ(workload::SpecByName("SVM-prefill").name, "SVM-prefill");
}

TEST(Catalog, SpecByNameAbortsOnUnknown) {
  EXPECT_DEATH(workload::SpecByName("NoSuchWorkload"), "unknown workload");
}

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() {
    osim::MachineConfig config;
    config.host_frames = 131072;
    config.seed = 31;
    machine_ = std::make_unique<osim::Machine>(config);
    machine_->AddVm(32768, std::make_unique<policy::BaseOnlyPolicy>(),
                    std::make_unique<policy::BaseOnlyPolicy>());
  }

  WorkloadSpec TinySpec() {
    WorkloadSpec spec;
    spec.name = "tiny";
    spec.working_set_pages = 2048;
    spec.vma_count = 4;
    spec.ops = 5000;
    spec.work_per_access = 100;
    return spec;
  }

  std::unique_ptr<osim::Machine> machine_;
};

TEST_F(DriverTest, RunProducesConsistentCounters) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  workload::DriverOptions options;
  options.warmup_fraction = 0.0;
  const auto result = driver.Run(TinySpec(), options);
  EXPECT_EQ(result.workload, "tiny");
  EXPECT_EQ(result.ops, 5000u);
  EXPECT_GT(result.busy_cycles, 0u);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_EQ(result.tlb_hits + result.tlb_misses,
            result.counters.tlb_hits + result.counters.tlb_misses);
  EXPECT_GT(result.tlb_misses, 0u);
  EXPECT_LE(result.tlb_miss_rate, 1.0);
}

TEST_F(DriverTest, LatencyKindRecordsRequests) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  WorkloadSpec spec = TinySpec();
  spec.kind = Kind::kLatency;
  spec.accesses_per_request = 10;
  workload::DriverOptions options;
  options.warmup_fraction = 0.0;
  const auto result = driver.Run(spec, options);
  EXPECT_EQ(result.requests, 500u);
  EXPECT_GT(result.mean_latency, 0.0);
  EXPECT_GE(result.p99_latency, result.mean_latency * 0.5);
}

TEST_F(DriverTest, WarmupExcludedFromOps) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  workload::DriverOptions options;
  options.warmup_fraction = 0.2;
  const auto result = driver.Run(TinySpec(), options);
  EXPECT_EQ(result.ops, 4000u);
}

TEST_F(DriverTest, TeardownUnmapsEverything) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  workload::DriverOptions options;
  options.teardown = true;
  driver.Run(TinySpec(), options);
  EXPECT_EQ(machine_->vm(0).guest().aspace().vma_count(), 0u);
  EXPECT_EQ(machine_->vm(0).guest().table().mapped_pages(), 0u);
  EXPECT_EQ(machine_->vm(0).guest().buddy().allocated_frames(), 0u);
}

TEST_F(DriverTest, GradualAllocationGrowsVmaCount) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  WorkloadSpec spec = TinySpec();
  spec.alloc = AllocPattern::kGradual;
  spec.vma_count = 8;
  driver.Begin(spec, {});
  driver.Step(100);
  const size_t early = machine_->vm(0).guest().aspace().vma_count();
  driver.Step(spec.ops);
  const size_t late = machine_->vm(0).guest().aspace().vma_count();
  EXPECT_LT(early, late);
  EXPECT_EQ(late, 8u);
  driver.Finish();
}

TEST_F(DriverTest, ChurnRecyclesVmas) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  WorkloadSpec spec = TinySpec();
  spec.churn_period_ops = 1000;
  const auto result = driver.Run(spec, {});
  (void)result;
  // Same live VMA count, but ids advanced beyond the initial 4.
  EXPECT_EQ(machine_->vm(0).guest().aspace().vma_count(), 4u);
  bool recycled = false;
  for (osim::Vma* vma : machine_->vm(0).guest().aspace().Vmas()) {
    if (vma->id >= 4) {
      recycled = true;
    }
  }
  EXPECT_TRUE(recycled);
}

TEST_F(DriverTest, SteppedRunMatchesDoneSemantics) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  driver.Begin(TinySpec(), {});
  uint64_t total = 0;
  while (!driver.Done()) {
    total += driver.Step(333);
  }
  EXPECT_EQ(total, 5000u);
  EXPECT_EQ(driver.Step(10), 0u);
  driver.Finish();
}

}  // namespace

namespace {

TEST_F(DriverTest, GcSweepDensifiesRegions) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  workload::WorkloadSpec spec = TinySpec();
  spec.init_memory = false;          // lazily committed
  spec.access = AccessPattern::kZipf;
  spec.zipf_theta = 0.99;            // sparse touches without the sweep
  spec.gc_sweep_period_ops = 2000;
  driver.Run(spec, {});
  // After sweeps, every page of every VMA is committed.
  EXPECT_EQ(machine_->vm(0).guest().table().mapped_pages(),
            spec.working_set_pages);
}

TEST_F(DriverTest, NoGcSweepLeavesSparseRegions) {
  workload::WorkloadDriver driver(machine_.get(), 0);
  workload::WorkloadSpec spec = TinySpec();
  spec.init_memory = false;
  spec.access = AccessPattern::kZipf;
  spec.zipf_theta = 0.99;
  driver.Run(spec, {});
  EXPECT_LT(machine_->vm(0).guest().table().mapped_pages(),
            spec.working_set_pages);
}

TEST(TouchWorkCycles, OneDivisorPerTouchPath) {
  workload::WorkloadSpec spec;
  spec.work_per_access = 320;
  // Request accesses carry the full think time; init fills model a tight
  // loop at a quarter of it, GC sweeps a pointer-chasing scan at an
  // eighth.  These divisors are part of the benchmark contract (figure
  // cycle totals shift if any path drifts), so they are pinned here.
  EXPECT_EQ(
      workload::TouchWorkCycles(spec, workload::TouchKind::kRequest), 320u);
  EXPECT_EQ(
      workload::TouchWorkCycles(spec, workload::TouchKind::kInitPopulate),
      80u);
  EXPECT_EQ(
      workload::TouchWorkCycles(spec, workload::TouchKind::kGcSweep), 40u);
  // Integer division truncates; all paths share that rounding rule.
  spec.work_per_access = 7;
  EXPECT_EQ(
      workload::TouchWorkCycles(spec, workload::TouchKind::kRequest), 7u);
  EXPECT_EQ(
      workload::TouchWorkCycles(spec, workload::TouchKind::kInitPopulate),
      1u);
  EXPECT_EQ(
      workload::TouchWorkCycles(spec, workload::TouchKind::kGcSweep), 0u);
}

}  // namespace
