// Tests for the TLB sharing domain (mmu/tlb_domain.h): VMID-tagged views
// over private, shared, and way-partitioned physical arrays.
//
// Four layers of coverage:
//
//  * Domain unit tests: tag isolation on a shared array, selective
//    invalidation vs full flush, way windows confining evictions.
//  * A private-vs-HEAD differential at the engine level: an engine that
//    *owns* its Tlb (the pre-domain construction, still the default) and
//    an engine borrowing a private-mode domain view must be bit-for-bit
//    indistinguishable under translation streams, batched translation,
//    and generation churn.
//  * A machine-level differential reusing the test_access_batch.cc
//    FNV-digest pattern across the four representative system stacks: on
//    a private-mode machine with two collocated VMs, access batching must
//    be unobservable (results, per-VM TLB counters, logical time, and
//    structural page-table digests all equal).
//  * Behavioral assertions for the sharing modes: shared mode makes a
//    cache-fitting victim measurably miss more when an aggressor streams
//    (cross-VM evictions visible in the victim's counters); partitioned
//    mode makes the victim's hit/miss counts *exactly* independent of the
//    aggressor's intensity; and fuzz epochs rotating through all three
//    modes keep the per-VM counter accounting consistent with the
//    physical array.
#include "mmu/tlb_domain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "harness/systems.h"
#include "mmu/page_table.h"
#include "mmu/translation_engine.h"
#include "os/machine.h"
#include "os/virtual_machine.h"

namespace {

using base::kPagesPerHuge;
using base::PageSize;
using mmu::TlbShareMode;
using osim::VirtualMachine;

mmu::TlbDomainConfig SmallDomain(TlbShareMode mode, uint32_t sets,
                                 uint32_t ways) {
  mmu::TlbDomainConfig config;
  config.tlb.sets = sets;
  config.tlb.ways = ways;
  config.mode = mode;
  return config;
}

// --- Domain unit tests -----------------------------------------------------

TEST(TlbDomain, PrivateModeBuildsSeparateArrays) {
  mmu::TlbDomain domain(SmallDomain(TlbShareMode::kPrivate, 16, 4));
  mmu::TlbView v0 = domain.AddVm(0);
  mmu::TlbView v1 = domain.AddVm(1);
  EXPECT_TRUE(v0.exclusive());
  EXPECT_NE(&v0.physical(), &v1.physical());
  EXPECT_EQ(domain.shared_tlb(), nullptr);

  v0.Insert(100, PageSize::kBase, 5);
  EXPECT_TRUE(v0.Probe(100));
  EXPECT_FALSE(v1.Probe(100));

  // An exclusive view's Flush is the historical whole-array flush.
  v0.Flush();
  EXPECT_FALSE(v0.Probe(100));
  EXPECT_EQ(v0.flushes(), 1u);
  EXPECT_EQ(v0.vm_invalidated(), 0u);
}

TEST(TlbDomain, SharedArrayIsolatesHitsByVmid) {
  mmu::TlbDomain domain(SmallDomain(TlbShareMode::kShared, 16, 4));
  mmu::TlbView v0 = domain.AddVm(0);
  mmu::TlbView v1 = domain.AddVm(1);
  EXPECT_FALSE(v0.exclusive());
  EXPECT_EQ(&v0.physical(), &v1.physical());

  // The same VPN translates differently in each VM; tags keep them apart.
  v0.Insert(100, PageSize::kBase, 5);
  EXPECT_FALSE(v1.Probe(100));
  v1.Insert(100, PageSize::kBase, 9);
  EXPECT_EQ(v0.Lookup(100).frame, 5u);
  EXPECT_EQ(v1.Lookup(100).frame, 9u);
  EXPECT_EQ(v0.hits(), 1u);
  EXPECT_EQ(v1.hits(), 1u);

  // A shared view's Flush is a tagged selective invalidation: only this
  // VM's entries drop, and no whole-array flush is recorded.
  v0.Flush();
  EXPECT_FALSE(v0.Probe(100));
  EXPECT_TRUE(v1.Probe(100));
  EXPECT_EQ(v0.vm_invalidated(), 1u);
  EXPECT_EQ(v1.vm_invalidated(), 0u);
  EXPECT_EQ(domain.shared_tlb()->flushes(), 0u);
  EXPECT_EQ(domain.shared_tlb()->entry_count(), 1u);
}

TEST(TlbDomain, SharedModeInsertsEvictAcrossVms) {
  // One set, two ways: the second VM's fill must evict the LRU entry, which
  // belongs to the first VM — counted on the victim as a cross-VM eviction.
  mmu::TlbDomain domain(SmallDomain(TlbShareMode::kShared, 1, 2));
  mmu::TlbView v0 = domain.AddVm(0);
  mmu::TlbView v1 = domain.AddVm(1);
  v0.Insert(1, PageSize::kBase, 10);
  v0.Insert(2, PageSize::kBase, 20);
  EXPECT_EQ(v0.entry_count(), 2u);
  v1.Insert(3, PageSize::kBase, 30);
  EXPECT_EQ(v0.cross_vm_evictions(), 1u);
  EXPECT_EQ(v0.entry_count(), 1u);
  EXPECT_EQ(v1.entry_count(), 1u);
}

TEST(TlbDomain, PartitionedWindowsConfineEvictions) {
  // Four ways split two-and-two: each VM can only evict inside its own
  // window, so an aggressor churning its window never displaces the peer.
  mmu::TlbDomainConfig config = SmallDomain(TlbShareMode::kPartitioned, 1, 4);
  config.expected_vms = 2;
  mmu::TlbDomain domain(config);
  mmu::TlbView v0 = domain.AddVm(0);
  mmu::TlbView v1 = domain.AddVm(1);
  v0.Insert(1, PageSize::kBase, 10);
  v0.Insert(2, PageSize::kBase, 20);
  for (uint64_t vpn = 100; vpn < 120; ++vpn) {
    v1.Insert(vpn, PageSize::kBase, vpn);
  }
  EXPECT_TRUE(v0.Probe(1));
  EXPECT_TRUE(v0.Probe(2));
  EXPECT_EQ(v0.cross_vm_evictions(), 0u);
  EXPECT_EQ(v1.cross_vm_evictions(), 0u);
  EXPECT_EQ(v0.entry_count(), 2u);
  EXPECT_EQ(v1.entry_count(), 2u);
}

TEST(TlbDomain, InvalidateVmCountsEntriesNotFlushes) {
  mmu::TlbDomain domain(SmallDomain(TlbShareMode::kShared, 16, 4));
  mmu::TlbView v0 = domain.AddVm(0);
  mmu::TlbView v1 = domain.AddVm(1);
  for (uint64_t vpn = 0; vpn < 8; ++vpn) {
    v0.Insert(vpn, PageSize::kBase, vpn);
  }
  v1.Insert(3, PageSize::kBase, 99);
  EXPECT_EQ(domain.InvalidateVm(0), 8u);
  EXPECT_EQ(v0.vm_invalidated(), 8u);
  EXPECT_EQ(domain.shared_tlb()->flushes(), 0u);
  EXPECT_TRUE(v1.Probe(3));
}

// --- Engine-level private-vs-HEAD differential -----------------------------

// The pre-domain construction (an engine owning its Tlb) and a private-mode
// domain view must be indistinguishable: same hits, misses, stale drops,
// charged cycles, and translation results, under scalar and batched
// translation with generation churn in between.
TEST(TlbDomainDifferential, PrivateViewMatchesOwnedEngine) {
  mmu::PageTable guest_a, ept_a, guest_b, ept_b;
  for (uint64_t r = 0; r < 8; ++r) {
    guest_a.MapHuge(r, r * kPagesPerHuge);
    ept_a.MapHuge(r, (8 + r) * kPagesPerHuge);
    guest_b.MapHuge(r, r * kPagesPerHuge);
    ept_b.MapHuge(r, (8 + r) * kPagesPerHuge);
  }
  // HEAD path: the engine builds and owns its array.
  mmu::TranslationEngine owned(mmu::TranslationEngine::Config{}, &guest_a,
                               &ept_a);
  // Domain path: identical geometry, private mode, vmid 0.
  mmu::TlbDomainConfig domain_config;
  domain_config.tlb = owned.tlb().config();
  mmu::TlbDomain domain(domain_config);
  mmu::TranslationEngine viewed(mmu::TranslationEngine::Config{}, &guest_b,
                                &ept_b, domain.AddVm(0));

  base::Rng rng(13);
  std::vector<uint64_t> vpns(64);
  std::vector<mmu::TranslateResult> out(64);
  for (int round = 0; round < 100; ++round) {
    for (auto& v : vpns) {
      v = rng.NextBelow(8 * kPagesPerHuge);
    }
    for (const uint64_t v : vpns) {
      const auto a = owned.Translate(v);
      const auto b = viewed.Translate(v);
      ASSERT_EQ(a.status, b.status) << round;
      ASSERT_EQ(a.frame, b.frame) << round;
      ASSERT_EQ(a.well_aligned_huge, b.well_aligned_huge) << round;
    }
    const size_t ok = viewed.TranslateBatch(vpns, out.data());
    ASSERT_EQ(ok, vpns.size());
    for (const uint64_t v : vpns) {
      ASSERT_EQ(owned.Translate(v).status, mmu::TranslateStatus::kOk);
    }
    // Demote + re-promote a region in place on both sides so stale-stamp
    // revalidation fires through both constructions.
    const uint64_t r = rng.NextBelow(8);
    guest_a.Demote(r);
    guest_a.PromoteInPlace(r);
    guest_b.Demote(r);
    guest_b.PromoteInPlace(r);
    ASSERT_EQ(owned.tlb().hits(), viewed.tlb().hits()) << round;
    ASSERT_EQ(owned.tlb().misses(), viewed.tlb().misses()) << round;
    ASSERT_EQ(owned.tlb().stale_drops(), viewed.tlb().stale_drops())
        << round;
    ASSERT_EQ(owned.translation_cycles(), viewed.translation_cycles())
        << round;
  }
  // Churn is revalidated in place (restamp, not drop), so hits — not stale
  // drops — prove the generation path ran identically on both sides.
  EXPECT_GT(owned.tlb().hits(), 0u);
}

// --- Machine-level differential across the four system stacks --------------

// Scripted two-VM access plan; everything derives from the seed so every
// driver replays the identical interleaving.
struct Plan {
  struct Segment {
    std::vector<uint64_t> vpns0;  // offsets into VM 0's VMA
    std::vector<uint64_t> vpns1;  // offsets into VM 1's VMA
    base::Cycles advance_after = 0;
  };
  std::vector<Segment> segments;
};

Plan BuildPlan(uint64_t seed) {
  base::Rng rng(seed);
  Plan plan;
  for (int s = 0; s < 8; ++s) {
    Plan::Segment seg;
    const uint64_t len = 100 + rng.NextBelow(400);
    for (uint64_t i = 0; i < len; ++i) {
      seg.vpns0.push_back(rng.NextBelow(4 * kPagesPerHuge));
      seg.vpns1.push_back(rng.NextBelow(4 * kPagesPerHuge));
    }
    if (rng.NextBool(0.5)) {
      seg.advance_after = 1000 * (1 + rng.NextBelow(50));
    }
    plan.segments.push_back(std::move(seg));
  }
  return plan;
}

struct VmObservation {
  std::vector<VirtualMachine::AccessResult> results;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t tlb_stale = 0;
  uint64_t tlb_shootdowns = 0;
  uint64_t cross_vm = 0;
  uint64_t guest_digest = 0;
  uint64_t host_digest = 0;
};

struct Observation {
  VmObservation vm[2];
  base::Cycles now = 0;
};

uint64_t DigestTable(const mmu::PageTable& table) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  table.ForEachHuge([&](uint64_t region, uint64_t frame) {
    mix(region * 2 + 1);
    mix(frame);
    mix(table.generation(region));
  });
  table.ForEachBaseRegion([&](uint64_t region, uint32_t) {
    mix(region * 2);
    mix(table.generation(region));
    table.ForEachBasePage(region, [&](uint32_t slot, uint64_t frame) {
      mix(slot);
      mix(frame);
    });
  });
  return h;
}

// Replays `plan` on a private-mode machine with two collocated VMs under
// `kind`, alternating 50-access bursts between the VMs.  Scalar when
// batch == 0, else via AccessBatch in `batch`-sized chunks.
Observation Drive(harness::SystemKind kind, uint64_t seed, const Plan& plan,
                  uint64_t batch) {
  osim::MachineConfig config;
  config.host_frames = 32768;
  config.daemon_period = 20000;
  config.seed = seed;
  osim::Machine machine(config);
  VirtualMachine& vm0 = harness::AddSystemVm(machine, kind, 8192);
  VirtualMachine& vm1 = harness::AddSystemVm(machine, kind, 8192);
  machine.FragmentGuestMemory(0, 0.6);
  machine.FragmentGuestMemory(1, 0.6);
  machine.FragmentHostMemory(0.6);
  const uint64_t base0 =
      vm0.guest().aspace().MapAnonymous(4 * kPagesPerHuge).start_page;
  const uint64_t base1 =
      vm1.guest().aspace().MapAnonymous(4 * kPagesPerHuge).start_page;

  Observation obs;
  std::vector<uint64_t> vpns;
  std::vector<VirtualMachine::AccessResult> out;
  const auto burst = [&](int32_t id, std::span<const uint64_t> offs,
                         uint64_t base) {
    vpns.clear();
    for (const uint64_t off : offs) {
      vpns.push_back(base + off);
    }
    if (batch == 0) {
      for (const uint64_t vpn : vpns) {
        obs.vm[id].results.push_back(machine.Access(id, vpn, 50));
      }
    } else {
      for (size_t i = 0; i < vpns.size(); i += batch) {
        const size_t n = std::min<size_t>(batch, vpns.size() - i);
        machine.AccessBatch(id, std::span(vpns.data() + i, n), 50, &out);
        obs.vm[id].results.insert(obs.vm[id].results.end(), out.begin(),
                                  out.end());
      }
    }
  };
  for (const Plan::Segment& seg : plan.segments) {
    // Alternate 50-access bursts so the VMs genuinely interleave on the
    // clock (and, in shared arrangements, in the physical array).
    for (size_t i = 0; i < seg.vpns0.size(); i += 50) {
      const size_t n = std::min<size_t>(50, seg.vpns0.size() - i);
      burst(0, std::span(seg.vpns0.data() + i, n), base0);
      burst(1, std::span(seg.vpns1.data() + i, n), base1);
    }
    if (seg.advance_after != 0) {
      machine.AdvanceTime(seg.advance_after);
    }
  }

  for (int32_t id = 0; id < 2; ++id) {
    VirtualMachine& vm = machine.vm(id);
    const mmu::TlbView& tlb = vm.engine().tlb();
    obs.vm[id].tlb_hits = tlb.hits();
    obs.vm[id].tlb_misses = tlb.misses();
    obs.vm[id].tlb_stale = tlb.stale_drops();
    obs.vm[id].tlb_shootdowns = tlb.shootdowns();
    obs.vm[id].cross_vm = tlb.cross_vm_evictions();
    obs.vm[id].guest_digest = DigestTable(vm.guest().table());
    obs.vm[id].host_digest = DigestTable(vm.host_slice().table());
  }
  obs.now = machine.Now();
  return obs;
}

void ExpectSameObservation(const Observation& scalar, const Observation& b,
                           uint64_t batch) {
  for (int32_t id = 0; id < 2; ++id) {
    const VmObservation& s = scalar.vm[id];
    const VmObservation& r = b.vm[id];
    ASSERT_EQ(s.results.size(), r.results.size())
        << "batch " << batch << " vm " << id;
    for (size_t i = 0; i < s.results.size(); ++i) {
      ASSERT_EQ(s.results[i].cycles, r.results[i].cycles)
          << "batch " << batch << " vm " << id << " access " << i;
      ASSERT_EQ(s.results[i].tlb_hit, r.results[i].tlb_hit)
          << "batch " << batch << " vm " << id << " access " << i;
      ASSERT_EQ(s.results[i].faults_taken, r.results[i].faults_taken)
          << "batch " << batch << " vm " << id << " access " << i;
    }
    EXPECT_EQ(s.tlb_hits, r.tlb_hits) << "batch " << batch << " vm " << id;
    EXPECT_EQ(s.tlb_misses, r.tlb_misses)
        << "batch " << batch << " vm " << id;
    EXPECT_EQ(s.tlb_stale, r.tlb_stale) << "batch " << batch << " vm " << id;
    EXPECT_EQ(s.tlb_shootdowns, r.tlb_shootdowns)
        << "batch " << batch << " vm " << id;
    EXPECT_EQ(s.cross_vm, r.cross_vm) << "batch " << batch << " vm " << id;
    EXPECT_EQ(s.guest_digest, r.guest_digest)
        << "batch " << batch << " vm " << id;
    EXPECT_EQ(s.host_digest, r.host_digest)
        << "batch " << batch << " vm " << id;
  }
  EXPECT_EQ(scalar.now, b.now) << "batch " << batch;
}

class TlbDomainDifferentialTest
    : public ::testing::TestWithParam<harness::SystemKind> {};

TEST_P(TlbDomainDifferentialTest, BatchSizeIsUnobservableWithTwoVms) {
  const harness::SystemKind kind = GetParam();
  const uint64_t seed = 20230817;
  const Plan plan = BuildPlan(seed);
  const Observation scalar = Drive(kind, seed, plan, 0);
  ASSERT_GT(scalar.vm[0].tlb_hits, 0u);
  ASSERT_GT(scalar.vm[0].tlb_misses, 0u);
  ASSERT_GT(scalar.vm[1].tlb_hits, 0u);
  // Private arrays: collocation can never evict across VMs.
  EXPECT_EQ(scalar.vm[0].cross_vm, 0u);
  EXPECT_EQ(scalar.vm[1].cross_vm, 0u);

  for (const uint64_t batch : {7ull, 64ull}) {
    const Observation batched = Drive(kind, seed, plan, batch);
    ExpectSameObservation(scalar, batched, batch);
  }
}

INSTANTIATE_TEST_SUITE_P(Systems, TlbDomainDifferentialTest,
                         ::testing::Values(harness::SystemKind::kGemini,
                                           harness::SystemKind::kThp,
                                           harness::SystemKind::kHawkEye,
                                           harness::SystemKind::kHostBVmB));

// --- Sharing-mode behavior -------------------------------------------------

struct InterferenceResult {
  uint64_t victim_hits = 0;
  uint64_t victim_misses = 0;
  uint64_t victim_cross_vm = 0;
};

// Victim loops over a TLB-fitting working set while an aggressor streams
// `aggressor_pages` distinct pages in 16-access bursts per victim access —
// bursty enough that, on a shared array, a victim entry ages past the
// aggressor's refills before its next reuse (plain 1:1 interleaving lets
// LRU protect the hotter victim set, which is the *absence* of
// interference).  Counters are deltas over the post-warmup window.
// Base-only stacks keep every entry 4 KiB so the arithmetic is exact.
InterferenceResult RunInterference(TlbShareMode mode,
                                   uint64_t aggressor_pages) {
  osim::MachineConfig config;
  config.host_frames = 65536;
  config.daemon_period = 20000;
  config.seed = 7;
  config.tlb_mode = mode;
  osim::Machine machine(config);
  VirtualMachine& victim =
      harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  VirtualMachine& aggressor =
      harness::AddSystemVm(machine, harness::SystemKind::kHostBVmB, 16384);
  const uint64_t victim_pages = 1024;  // < 1536 entries: fits when private
  const uint64_t victim_base =
      victim.guest().aspace().MapAnonymous(victim_pages).start_page;
  const uint64_t agg_base =
      aggressor.guest().aspace().MapAnonymous(8192).start_page;

  const auto step = [&](uint64_t i) {
    machine.Access(0, victim_base + (i % victim_pages), 50);
    for (uint64_t k = 0; k < 16; ++k) {
      machine.Access(1, agg_base + ((i * 16 + k) % aggressor_pages), 50);
    }
  };
  for (uint64_t i = 0; i < 2048; ++i) {
    step(i);  // warmup: victim set resident, aggressor stream started
  }
  const mmu::TlbView& tlb = victim.engine().tlb();
  const uint64_t hits0 = tlb.hits();
  const uint64_t misses0 = tlb.misses();
  const uint64_t cross0 = tlb.cross_vm_evictions();
  for (uint64_t i = 2048; i < 10240; ++i) {
    step(i);
  }
  InterferenceResult r;
  r.victim_hits = tlb.hits() - hits0;
  r.victim_misses = tlb.misses() - misses0;
  r.victim_cross_vm = tlb.cross_vm_evictions() - cross0;
  return r;
}

TEST(TlbDomainSharing, SharedModeRaisesVictimMissRate) {
  const InterferenceResult priv =
      RunInterference(TlbShareMode::kPrivate, 8192);
  const InterferenceResult shared =
      RunInterference(TlbShareMode::kShared, 8192);
  // Private arrays: the victim's working set fits and stays resident.
  EXPECT_EQ(priv.victim_cross_vm, 0u);
  EXPECT_LT(priv.victim_misses, 100u);
  // Shared array: the aggressor's stream displaces the victim's entries —
  // the interference channel the arrangement exists to expose.
  EXPECT_GT(shared.victim_cross_vm, 1000u);
  EXPECT_GT(shared.victim_misses, priv.victim_misses + 1000u);
}

TEST(TlbDomainSharing, PartitionedModeIsolatesVictimFromAggressor) {
  // Same machine, same victim stream; only the aggressor's footprint
  // changes.  With static way windows the victim's hit/miss counts must be
  // *exactly* independent of the aggressor's intensity.
  const InterferenceResult quiet =
      RunInterference(TlbShareMode::kPartitioned, 16);
  const InterferenceResult noisy =
      RunInterference(TlbShareMode::kPartitioned, 8192);
  EXPECT_EQ(quiet.victim_hits, noisy.victim_hits);
  EXPECT_EQ(quiet.victim_misses, noisy.victim_misses);
  EXPECT_EQ(quiet.victim_cross_vm, 0u);
  EXPECT_EQ(noisy.victim_cross_vm, 0u);
  // The window (6 of 12 ways) is smaller than the working set, so the
  // isolation is not vacuous: the victim genuinely misses in its window.
  EXPECT_GT(noisy.victim_misses, 0u);
}

// --- Fuzz epochs rotating modes --------------------------------------------

class TlbDomainFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TlbDomainFuzzTest, RotatingModesKeepCounterAccounting) {
  const uint64_t seed = GetParam();
  base::Rng rng(seed);
  const TlbShareMode mode = static_cast<TlbShareMode>(seed % 3);
  osim::MachineConfig config;
  config.host_frames = 32768;
  config.daemon_period = 20000;
  config.seed = seed;
  config.tlb_mode = mode;
  osim::Machine machine(config);
  const auto systems = harness::AllSystems();
  VirtualMachine* vms[2];
  uint64_t bases[2];
  for (int32_t id = 0; id < 2; ++id) {
    const harness::SystemKind kind = systems[rng.NextBelow(systems.size())];
    vms[id] = &harness::AddSystemVm(machine, kind, 8192);
    bases[id] =
        vms[id]->guest().aspace().MapAnonymous(4 * kPagesPerHuge).start_page;
  }
  machine.FragmentHostMemory(0.5 + rng.NextDouble() * 0.4);

  std::vector<uint64_t> vpns;
  std::vector<VirtualMachine::AccessResult> out;
  for (int burst = 0; burst < 30; ++burst) {
    const int32_t id = static_cast<int32_t>(rng.NextBelow(2));
    vpns.resize(100);
    for (auto& v : vpns) {
      v = bases[id] + rng.NextBelow(4 * kPagesPerHuge);
    }
    if (rng.NextBool(0.5)) {
      for (const uint64_t vpn : vpns) {
        const auto r = machine.Access(id, vpn, 50);
        ASSERT_GT(r.cycles, 0u);
      }
    } else {
      machine.AccessBatch(id, vpns, 50, &out);
      for (const auto& r : out) {
        ASSERT_GT(r.cycles, 0u);
      }
    }
    if (rng.NextBool(0.3)) {
      machine.AdvanceTime(config.daemon_period * (1 + rng.NextBelow(3)));
    }

    // --- Invariants -----------------------------------------------------
    for (int32_t v = 0; v < 2; ++v) {
      vms[v]->guest().buddy().CheckInvariants();
      vms[v]->guest().table().CheckInvariants();
      vms[v]->host_slice().table().CheckInvariants();
    }
    machine.host().buddy().CheckInvariants();

    const mmu::TlbView& t0 = vms[0]->engine().tlb();
    const mmu::TlbView& t1 = vms[1]->engine().tlb();
    if (mode == TlbShareMode::kPrivate) {
      ASSERT_EQ(machine.tlb_domain().shared_tlb(), nullptr);
      ASSERT_EQ(t0.cross_vm_evictions(), 0u);
      ASSERT_EQ(t1.cross_vm_evictions(), 0u);
    } else {
      // One physical array: the per-VM slots must tile the aggregate
      // counters and the aggregate residency exactly.
      const mmu::Tlb* shared = machine.tlb_domain().shared_tlb();
      ASSERT_NE(shared, nullptr);
      ASSERT_EQ(shared->hits(), t0.hits() + t1.hits());
      ASSERT_EQ(shared->misses(), t0.misses() + t1.misses());
      ASSERT_EQ(shared->entry_count(),
                shared->entry_count(0) + shared->entry_count(1));
      uint64_t occupancy = 0;
      for (uint32_t s = 0; s < shared->config().sets; ++s) {
        occupancy += shared->set_occupancy(s);
      }
      ASSERT_EQ(occupancy, shared->entry_count());
      if (mode == TlbShareMode::kPartitioned) {
        ASSERT_EQ(t0.cross_vm_evictions(), 0u);
        ASSERT_EQ(t1.cross_vm_evictions(), 0u);
      }
    }

    // Translations still compose correctly through both tables.
    for (int probe = 0; probe < 4; ++probe) {
      const int32_t v = static_cast<int32_t>(rng.NextBelow(2));
      const uint64_t vpn = bases[v] + rng.NextBelow(4 * kPagesPerHuge);
      const auto g = vms[v]->guest().table().Lookup(vpn);
      const auto r = vms[v]->engine().Translate(vpn);
      if (!g.has_value()) {
        ASSERT_EQ(r.status, mmu::TranslateStatus::kGuestFault);
        continue;
      }
      const auto h = vms[v]->host_slice().table().Lookup(g->frame);
      if (h.has_value()) {
        ASSERT_EQ(r.status, mmu::TranslateStatus::kOk);
        ASSERT_EQ(r.frame, h->frame) << "vpn " << vpn;
      } else {
        ASSERT_EQ(r.status, mmu::TranslateStatus::kHostFault);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbDomainFuzzTest,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

}  // namespace
