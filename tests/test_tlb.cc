// Tests for the set-associative mixed-granularity TLB.
#include "mmu/tlb.h"

#include <gtest/gtest.h>

#include "base/types.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;
using base::PageSize;
using mmu::Tlb;
using mmu::TlbConfig;

TlbConfig Small(uint32_t sets, uint32_t ways) {
  TlbConfig c;
  c.sets = sets;
  c.ways = ways;
  return c;
}

TEST(Tlb, MissOnEmpty) {
  Tlb tlb(Small(4, 2));
  EXPECT_FALSE(tlb.Lookup(100).hit);
  EXPECT_EQ(tlb.misses(), 1u);
  EXPECT_EQ(tlb.hits(), 0u);
}

TEST(Tlb, HitAfterInsert) {
  Tlb tlb(Small(4, 2));
  tlb.Insert(100, PageSize::kBase, 7);
  const auto r = tlb.Lookup(100);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.size, PageSize::kBase);
  EXPECT_EQ(r.frame, 7u);
  EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, BaseEntryDoesNotCoverNeighbour) {
  Tlb tlb(Small(4, 2));
  tlb.Insert(100, PageSize::kBase, 7);
  EXPECT_FALSE(tlb.Lookup(101).hit);
}

TEST(Tlb, HugeEntryCoversWholeRegion) {
  Tlb tlb(Small(4, 2));
  const uint64_t vpn = 3ull << kHugeOrder;
  tlb.Insert(vpn, PageSize::kHuge, 4096);
  for (uint64_t off : {0ull, 1ull, 255ull, 511ull}) {
    const auto r = tlb.Lookup(vpn + off);
    EXPECT_TRUE(r.hit) << off;
    EXPECT_EQ(r.size, PageSize::kHuge);
    EXPECT_EQ(r.frame, 4096u);  // block base; offset applied by the engine
  }
  EXPECT_FALSE(tlb.Lookup(vpn + kPagesPerHuge).hit);
}

TEST(Tlb, LruEvictionWithinSet) {
  Tlb tlb(Small(1, 2));  // one set, two ways
  tlb.Insert(1, PageSize::kBase, 10);
  tlb.Insert(2, PageSize::kBase, 20);
  EXPECT_TRUE(tlb.Lookup(1).hit);  // make 2 the LRU
  tlb.Insert(3, PageSize::kBase, 30);
  EXPECT_TRUE(tlb.Lookup(1).hit);
  EXPECT_FALSE(tlb.Lookup(2).hit);  // evicted
  EXPECT_TRUE(tlb.Lookup(3).hit);
}

TEST(Tlb, ReinsertUpdatesFrame) {
  Tlb tlb(Small(4, 2));
  tlb.Insert(5, PageSize::kBase, 1);
  tlb.Insert(5, PageSize::kBase, 2);
  EXPECT_EQ(tlb.Lookup(5).frame, 2u);
  EXPECT_EQ(tlb.entry_count(), 1u);  // no duplicate entries
}

TEST(Tlb, FlushDropsEverything) {
  Tlb tlb(Small(8, 4));
  for (uint64_t i = 0; i < 16; ++i) {
    tlb.Insert(i, PageSize::kBase, i);
  }
  EXPECT_GT(tlb.entry_count(), 0u);
  tlb.Flush();
  EXPECT_EQ(tlb.entry_count(), 0u);
  EXPECT_FALSE(tlb.Lookup(3).hit);
}

TEST(Tlb, ShootdownPageDropsBaseAndCoveringHuge) {
  Tlb tlb(Small(8, 4));
  const uint64_t vpn = 5ull << kHugeOrder;
  tlb.Insert(vpn + 3, PageSize::kBase, 99);
  tlb.Insert(vpn, PageSize::kHuge, 2048);
  EXPECT_EQ(tlb.ShootdownPage(vpn + 3), 2u);
  EXPECT_FALSE(tlb.Lookup(vpn + 3).hit);
  EXPECT_EQ(tlb.shootdowns(), 2u);
}

TEST(Tlb, ShootdownRangeSmall) {
  Tlb tlb(Small(8, 4));
  tlb.Insert(10, PageSize::kBase, 1);
  tlb.Insert(11, PageSize::kBase, 2);
  tlb.Insert(12, PageSize::kBase, 3);
  tlb.ShootdownRange(10, 2);
  EXPECT_FALSE(tlb.Lookup(10).hit);
  EXPECT_FALSE(tlb.Lookup(11).hit);
  EXPECT_TRUE(tlb.Lookup(12).hit);
}

TEST(Tlb, ShootdownRangeLargeScansAllEntries) {
  Tlb tlb(Small(2, 2));  // 4 entries => range of 8 pages triggers the scan
  tlb.Insert(0, PageSize::kBase, 1);
  tlb.Insert(1000, PageSize::kBase, 2);
  const uint64_t huge_vpn = 2ull << kHugeOrder;
  tlb.Insert(huge_vpn, PageSize::kHuge, 1024);
  tlb.ShootdownRange(0, 100000);
  EXPECT_EQ(tlb.entry_count(), 0u);
}

TEST(Tlb, StaleHitDiscountMovesCounters) {
  Tlb tlb(Small(4, 2));
  tlb.Insert(1, PageSize::kBase, 1);
  EXPECT_TRUE(tlb.Lookup(1).hit);
  EXPECT_EQ(tlb.hits(), 1u);
  tlb.DiscountStaleHit();
  EXPECT_EQ(tlb.hits(), 0u);
  EXPECT_EQ(tlb.misses(), 1u);
  EXPECT_EQ(tlb.stale_drops(), 1u);
}

TEST(Tlb, HugeCoverageBeatsBaseCoverage) {
  // With a working set far beyond base-entry capacity, huge entries keep
  // hitting where base entries thrash: the paper's TLB-coverage effect.
  Tlb base_tlb(Small(16, 4));  // 64 entries
  Tlb huge_tlb(Small(16, 4));
  constexpr uint64_t kPages = 4096;  // 8 regions
  for (uint64_t p = 0; p < kPages; ++p) {
    base_tlb.Insert(p, PageSize::kBase, p);
  }
  for (uint64_t r = 0; r < kPages / kPagesPerHuge; ++r) {
    huge_tlb.Insert(r << kHugeOrder, PageSize::kHuge, r * kPagesPerHuge);
  }
  base_tlb.ResetCounters();
  huge_tlb.ResetCounters();
  for (uint64_t p = 0; p < kPages; p += 7) {
    base_tlb.Lookup(p);
    huge_tlb.Lookup(p);
  }
  EXPECT_EQ(huge_tlb.misses(), 0u);
  EXPECT_GT(base_tlb.misses(), base_tlb.hits());
}

TEST(Tlb, ResetCountersKeepsEntries) {
  Tlb tlb(Small(4, 2));
  tlb.Insert(9, PageSize::kBase, 9);
  tlb.Lookup(9);
  tlb.ResetCounters();
  EXPECT_EQ(tlb.hits(), 0u);
  EXPECT_TRUE(tlb.Lookup(9).hit);  // entry survived
}

}  // namespace
