// Tests for huge booking: the reservation manager and the Algorithm 1
// booking-timeout controller.
#include "gemini/huge_booking.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace {

using base::kPagesPerHuge;
using gemini::BookingManager;
using gemini::BookingTimeoutController;

class BookingTest : public ::testing::Test {
 protected:
  BookingTest()
      : buddy_(32 * kPagesPerHuge),
        frames_(32 * kPagesPerHuge),
        booking_(&buddy_, &frames_, /*owner=*/0) {}

  vmem::BuddyAllocator buddy_;
  vmem::FrameSpace frames_;
  BookingManager booking_;
};

TEST_F(BookingTest, BookTakesRegionOutOfThePool) {
  ASSERT_TRUE(booking_.Book(2 * kPagesPerHuge, /*now=*/0, /*timeout=*/1000));
  EXPECT_TRUE(booking_.IsBooked(2 * kPagesPerHuge));
  EXPECT_FALSE(buddy_.IsRangeFree(2 * kPagesPerHuge, kPagesPerHuge));
  EXPECT_EQ(frames_.CountUse(vmem::FrameUse::kBooked), kPagesPerHuge);
}

TEST_F(BookingTest, BookFailsWhenRegionNotFree) {
  ASSERT_TRUE(buddy_.AllocateAt(3 * kPagesPerHuge + 7, 1));
  EXPECT_FALSE(booking_.Book(3 * kPagesPerHuge, 0, 1000));
  EXPECT_EQ(booking_.booked_count(), 0u);
}

TEST_F(BookingTest, DoubleBookIsIdempotent) {
  ASSERT_TRUE(booking_.Book(kPagesPerHuge, 0, 1000));
  EXPECT_TRUE(booking_.Book(kPagesPerHuge, 0, 1000));
  EXPECT_EQ(booking_.booked_count(), 1u);
}

TEST_F(BookingTest, AssignReleasesForTargetedAllocation) {
  ASSERT_TRUE(booking_.Book(4 * kPagesPerHuge, 0, 1000));
  EXPECT_TRUE(booking_.Assign(4 * kPagesPerHuge));
  EXPECT_FALSE(booking_.IsBooked(4 * kPagesPerHuge));
  // The just-released frames are free for an exact-placement allocation.
  EXPECT_TRUE(buddy_.AllocateAt(4 * kPagesPerHuge, kPagesPerHuge));
}

TEST_F(BookingTest, AssignUnknownFails) {
  EXPECT_FALSE(booking_.Assign(5 * kPagesPerHuge));
}

TEST_F(BookingTest, AssignAnyPopsABooking) {
  ASSERT_TRUE(booking_.Book(1 * kPagesPerHuge, 0, 1000));
  ASSERT_TRUE(booking_.Book(2 * kPagesPerHuge, 0, 1000));
  const uint64_t frame = booking_.AssignAny();
  EXPECT_NE(frame, vmem::kInvalidFrame);
  EXPECT_EQ(booking_.booked_count(), 1u);
  EXPECT_EQ(booking_.AssignAny() == vmem::kInvalidFrame,
            booking_.booked_count() != 1u);
}

TEST_F(BookingTest, AssignAnyEmptyReturnsInvalid) {
  EXPECT_EQ(booking_.AssignAny(), vmem::kInvalidFrame);
}

TEST_F(BookingTest, ExpireTimeoutsReleasesOnlyDue) {
  ASSERT_TRUE(booking_.Book(1 * kPagesPerHuge, /*now=*/0, /*timeout=*/100));
  ASSERT_TRUE(booking_.Book(2 * kPagesPerHuge, /*now=*/0, /*timeout=*/500));
  EXPECT_EQ(booking_.ExpireTimeouts(200), 1u);
  EXPECT_FALSE(booking_.IsBooked(1 * kPagesPerHuge));
  EXPECT_TRUE(booking_.IsBooked(2 * kPagesPerHuge));
  EXPECT_TRUE(buddy_.IsRangeFree(1 * kPagesPerHuge, kPagesPerHuge));
}

TEST_F(BookingTest, ReleaseAllRestoresPool) {
  ASSERT_TRUE(booking_.Book(1 * kPagesPerHuge, 0, 100));
  ASSERT_TRUE(booking_.Book(2 * kPagesPerHuge, 0, 100));
  booking_.ReleaseAll();
  EXPECT_EQ(booking_.booked_count(), 0u);
  EXPECT_EQ(buddy_.free_frames(), 32 * kPagesPerHuge);
  EXPECT_EQ(frames_.CountUse(vmem::FrameUse::kBooked), 0u);
}

// --- Algorithm 1 -----------------------------------------------------------

TEST(TimeoutController, StartsAtInitialValue) {
  BookingTimeoutController controller(1000);
  EXPECT_EQ(controller.effective_timeout(), 1000u);
  EXPECT_DOUBLE_EQ(controller.desired_timeout(), 1000.0);
}

TEST(TimeoutController, FirstPeriodStartsUpwardProbe) {
  BookingTimeoutController controller(1000);
  controller.OnPeriod(/*misses=*/100, /*fmfi=*/0.5);
  // Probing T_d * 1.1.
  EXPECT_EQ(controller.effective_timeout(), 1100u);
}

TEST(TimeoutController, AcceptsUpwardProbeWhenMissesDropAndFmfiStable) {
  BookingTimeoutController controller(1000);
  controller.OnPeriod(100, 0.5);  // baseline
  controller.OnPeriod(80, 0.5);   // probe: fewer misses, same fragmentation
  EXPECT_NEAR(controller.desired_timeout(), 1100.0, 1e-9);
}

TEST(TimeoutController, RejectsUpwardProbeWhenFmfiWorsens) {
  BookingTimeoutController controller(1000);
  controller.OnPeriod(100, 0.5);  // baseline
  controller.OnPeriod(80, 0.6);   // fewer misses BUT more fragmentation
  EXPECT_DOUBLE_EQ(controller.desired_timeout(), 1000.0);
  // The controller re-baselines at T_d before probing down.
  EXPECT_EQ(controller.effective_timeout(), 1000u);
}

TEST(TimeoutController, DownwardProbeAfterRejectedUpward) {
  BookingTimeoutController controller(1000);
  controller.OnPeriod(100, 0.5);  // baseline
  controller.OnPeriod(120, 0.5);  // probe up rejected (more misses)
  controller.OnPeriod(100, 0.5);  // re-baseline
  EXPECT_EQ(controller.effective_timeout(), 900u);  // probing T_d * 0.9
  controller.OnPeriod(90, 0.5);   // probe down accepted
  EXPECT_NEAR(controller.desired_timeout(), 900.0, 1e-9);
}

TEST(TimeoutController, RejectedDownwardKeepsDesired) {
  BookingTimeoutController controller(1000);
  controller.OnPeriod(100, 0.5);
  controller.OnPeriod(120, 0.5);  // up rejected
  controller.OnPeriod(100, 0.5);  // re-baseline
  controller.OnPeriod(130, 0.5);  // down rejected
  EXPECT_DOUBLE_EQ(controller.desired_timeout(), 1000.0);
  EXPECT_EQ(controller.effective_timeout(), 1000u);
}

TEST(TimeoutController, ConvergesUpwardUnderConsistentImprovement) {
  BookingTimeoutController controller(1000);
  // Misses keep decreasing whenever the timeout grows.
  uint64_t misses = 1000;
  for (int cycle = 0; cycle < 10; ++cycle) {
    controller.OnPeriod(misses, 0.5);  // baseline
    misses -= 50;
    controller.OnPeriod(misses, 0.5);  // probe up accepted
  }
  EXPECT_GT(controller.desired_timeout(), 2000.0);
}

}  // namespace
