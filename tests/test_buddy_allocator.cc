// Tests for the buddy allocator: invariants, targeted allocation, FMFI,
// and randomized property sweeps against a frame-ownership reference.
#include "vmem/buddy_allocator.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "base/rng.h"
#include "base/types.h"

namespace {

using base::kHugeOrder;
using base::kMaxOrder;
using base::kPagesPerHuge;
using vmem::BuddyAllocator;
using vmem::kInvalidFrame;

TEST(Buddy, FreshAllocatorIsFullyFree) {
  BuddyAllocator buddy(4096);
  EXPECT_EQ(buddy.free_frames(), 4096u);
  EXPECT_EQ(buddy.allocated_frames(), 0u);
  buddy.CheckInvariants();
}

TEST(Buddy, NonPowerOfTwoSizeSeedsCorrectly) {
  BuddyAllocator buddy(4096 + 512 + 3);
  EXPECT_EQ(buddy.free_frames(), 4096u + 512 + 3);
  buddy.CheckInvariants();
}

TEST(Buddy, AllocateReturnsAlignedBlocks) {
  BuddyAllocator buddy(1 << 14);
  for (int order = 0; order < kMaxOrder; ++order) {
    const uint64_t frame = buddy.Allocate(order);
    ASSERT_NE(frame, kInvalidFrame);
    EXPECT_EQ(frame % (1ull << order), 0u) << "order " << order;
  }
  buddy.CheckInvariants();
}

TEST(Buddy, AllocateExhaustsAndFails) {
  BuddyAllocator buddy(16);
  for (int i = 0; i < 16; ++i) {
    ASSERT_NE(buddy.Allocate(0), kInvalidFrame);
  }
  EXPECT_EQ(buddy.Allocate(0), kInvalidFrame);
  EXPECT_EQ(buddy.free_frames(), 0u);
}

TEST(Buddy, FreeMergesBuddies) {
  BuddyAllocator buddy(1024);
  const uint64_t a = buddy.Allocate(9);
  ASSERT_NE(a, kInvalidFrame);
  const uint64_t b = buddy.Allocate(9);
  ASSERT_NE(b, kInvalidFrame);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(9), 0u);
  EXPECT_EQ(buddy.FreeBlocksOfOrder(10), 0u);
  buddy.Free(a, 512);
  buddy.Free(b, 512);
  buddy.CheckInvariants();
  // 1024 contiguous frames must re-merge into one order-10 block.
  EXPECT_EQ(buddy.FreeBlocksOfOrder(10), 1u);
}

TEST(Buddy, PartialFreeRemerges) {
  BuddyAllocator buddy(2048);
  const uint64_t block = buddy.Allocate(10);
  ASSERT_NE(block, kInvalidFrame);
  // Free it page by page in a shuffled order; merging must rebuild it.
  std::vector<uint64_t> frames;
  for (uint64_t i = 0; i < 1024; ++i) {
    frames.push_back(block + i);
  }
  base::Rng rng(5);
  rng.Shuffle(frames);
  for (uint64_t f : frames) {
    buddy.Free(f, 1);
  }
  buddy.CheckInvariants();
  EXPECT_EQ(buddy.free_frames(), 2048u);
  EXPECT_GE(buddy.FreeBlocksOfOrder(10), 1u);
}

TEST(Buddy, AllocateAtExactRange) {
  BuddyAllocator buddy(4096);
  EXPECT_TRUE(buddy.AllocateAt(1000, 100));
  EXPECT_FALSE(buddy.IsRangeFree(1000, 100));
  EXPECT_TRUE(buddy.IsRangeFree(0, 1000));
  EXPECT_TRUE(buddy.IsRangeFree(1100, 100));
  buddy.CheckInvariants();
  buddy.Free(1000, 100);
  EXPECT_EQ(buddy.free_frames(), 4096u);
  buddy.CheckInvariants();
}

TEST(Buddy, AllocateAtFailsOnConflict) {
  BuddyAllocator buddy(4096);
  ASSERT_TRUE(buddy.AllocateAt(128, 64));
  EXPECT_FALSE(buddy.AllocateAt(100, 64));  // overlaps [128,192)
  EXPECT_FALSE(buddy.AllocateAt(191, 1));
  EXPECT_TRUE(buddy.AllocateAt(192, 1));
  buddy.CheckInvariants();
}

TEST(Buddy, AllocateAtOutOfRangeFails) {
  BuddyAllocator buddy(256);
  EXPECT_FALSE(buddy.AllocateAt(250, 10));
  EXPECT_TRUE(buddy.AllocateAt(250, 6));
}

TEST(Buddy, AllocateAtUnalignedHugeSpan) {
  BuddyAllocator buddy(4096);
  // A huge-page-sized range at an arbitrary (non-block-aligned) offset.
  EXPECT_TRUE(buddy.AllocateAt(700, kPagesPerHuge));
  buddy.CheckInvariants();
  EXPECT_EQ(buddy.allocated_frames(), kPagesPerHuge);
}

TEST(Buddy, FmfiZeroWhenUnfragmented) {
  BuddyAllocator buddy(1 << 14);
  EXPECT_DOUBLE_EQ(buddy.Fmfi(kHugeOrder), 0.0);
}

TEST(Buddy, FmfiOneWhenOnlySplinters) {
  BuddyAllocator buddy(2048);
  // Pin one frame in every huge-aligned span.
  for (uint64_t f = 256; f < 2048; f += 512) {
    ASSERT_TRUE(buddy.AllocateAt(f, 1));
  }
  EXPECT_DOUBLE_EQ(buddy.Fmfi(kHugeOrder), 1.0);
  EXPECT_LT(buddy.Fmfi(0), 1e-9);  // all free memory usable at order 0
}

TEST(Buddy, FmfiFullMemoryIsOne) {
  BuddyAllocator buddy(64);
  ASSERT_TRUE(buddy.AllocateAt(0, 64));
  EXPECT_DOUBLE_EQ(buddy.Fmfi(0), 1.0);
}

TEST(Buddy, LargestFreeOrder) {
  BuddyAllocator buddy(2048);
  EXPECT_EQ(buddy.LargestFreeOrder(), 10);
  ASSERT_TRUE(buddy.AllocateAt(1024, 1));  // split the top block
  EXPECT_EQ(buddy.LargestFreeOrder(), 10);  // [0,1024) still whole
  ASSERT_TRUE(buddy.AllocateAt(0, 1));
  EXPECT_LT(buddy.LargestFreeOrder(), 10);
}

TEST(Buddy, MutationEpochAdvances) {
  BuddyAllocator buddy(256);
  const uint64_t e0 = buddy.mutation_epoch();
  const uint64_t f = buddy.Allocate(0);
  EXPECT_GT(buddy.mutation_epoch(), e0);
  const uint64_t e1 = buddy.mutation_epoch();
  buddy.Free(f, 1);
  EXPECT_GT(buddy.mutation_epoch(), e1);
}

TEST(Buddy, RandomizedSelectionStaysCorrect) {
  BuddyAllocator buddy(1 << 13, /*selection_seed=*/99);
  std::vector<uint64_t> got;
  for (int i = 0; i < 64; ++i) {
    const uint64_t f = buddy.Allocate(3);
    ASSERT_NE(f, kInvalidFrame);
    EXPECT_EQ(f % 8, 0u);
    got.push_back(f);
  }
  buddy.CheckInvariants();
  for (uint64_t f : got) {
    buddy.Free(f, 8);
  }
  EXPECT_EQ(buddy.free_frames(), 1ull << 13);
  buddy.CheckInvariants();
}

// Differential property test: random alloc/free/alloc-at sequences tracked
// against a per-frame ownership map.  Frames must never be double-allocated
// and totals must always balance.
class BuddyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyPropertyTest, RandomOpsPreserveInvariants) {
  constexpr uint64_t kFrames = 1 << 12;
  base::Rng rng(GetParam());
  BuddyAllocator buddy(kFrames);
  // Live allocations: first frame -> count.
  std::map<uint64_t, uint64_t> live;
  uint64_t live_frames = 0;

  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      const int order = static_cast<int>(rng.NextBelow(kMaxOrder));
      const uint64_t f = buddy.Allocate(order);
      if (f != kInvalidFrame) {
        const uint64_t count = 1ull << order;
        // No overlap with any live allocation.
        for (const auto& [lf, lc] : live) {
          ASSERT_TRUE(f + count <= lf || lf + lc <= f)
              << "overlap at step " << step;
        }
        live.emplace(f, count);
        live_frames += count;
      }
    } else if (dice < 0.6) {
      const uint64_t f = rng.NextBelow(kFrames);
      const uint64_t count = 1 + rng.NextBelow(64);
      if (buddy.AllocateAt(f, count)) {
        for (const auto& [lf, lc] : live) {
          ASSERT_TRUE(f + count <= lf || lf + lc <= f);
        }
        live.emplace(f, count);
        live_frames += count;
      }
    } else if (!live.empty()) {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      buddy.Free(it->first, it->second);
      live_frames -= it->second;
      live.erase(it);
    }
    ASSERT_EQ(buddy.free_frames() + live_frames, kFrames) << "step " << step;
  }
  buddy.CheckInvariants();
  // Free everything; the allocator must return to a fully-merged state.
  for (const auto& [f, c] : live) {
    buddy.Free(f, c);
  }
  buddy.CheckInvariants();
  EXPECT_EQ(buddy.free_frames(), kFrames);
  EXPECT_EQ(buddy.LargestFreeOrder(), kMaxOrder - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace

namespace {

TEST(Buddy, BlocksAvailableCountsLargerBlocks) {
  BuddyAllocator buddy(4096);  // pristine: 2x order-10 + ... depends on size
  // 4096 frames = 2 order-10 + 0 others => 8 huge (order-9) blocks.
  EXPECT_EQ(buddy.BlocksAvailable(9), 8u);
  EXPECT_EQ(buddy.BlocksAvailable(10), 4u);
  ASSERT_TRUE(buddy.AllocateAt(0, 512));
  EXPECT_EQ(buddy.BlocksAvailable(9), 7u);
  // Splintering a block below order 9 removes it from availability.
  ASSERT_TRUE(buddy.AllocateAt(512 + 256, 1));
  EXPECT_EQ(buddy.BlocksAvailable(9), 6u);
}

}  // namespace
