// Integration tests for the composed Gemini policy: EMA placement,
// promotion to well-aligned huge pages, booking, bucket reuse, ablations.
#include "gemini/gemini_policy.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "metrics/alignment_audit.h"
#include "os/machine.h"
#include "policy/base_only.h"
#include "policy/thp.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 131072;
  config.daemon_period = 50000;
  config.seed = 21;
  return config;
}

void TouchRange(osim::Machine& machine, int32_t vm, uint64_t start,
                uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    machine.Access(vm, start + p, 50);
  }
}

TEST(GeminiPolicy, FormsWellAlignedHugePagesOnCleanSlate) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(8 * kPagesPerHuge);
  TouchRange(machine, 0, vma.start_page, vma.pages);
  // Give the scanner and daemons time to converge.
  machine.AdvanceTime(50 * machine.config().daemon_period);
  TouchRange(machine, 0, vma.start_page, vma.pages);
  machine.AdvanceTime(50 * machine.config().daemon_period);

  const auto report =
      metrics::AuditAlignment(vm.guest().table(), vm.host_slice().table());
  EXPECT_GE(report.guest_huge, 6u);
  EXPECT_GE(report.aligned_pairs, 6u);
  EXPECT_GE(report.well_aligned_rate, 0.8);
}

TEST(GeminiPolicy, EmaPlacesPagesContiguouslyAtAlignedAnchors) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(2 * kPagesPerHuge);
  TouchRange(machine, 0, vma.start_page, 100);
  const uint64_t first = vm.guest().table().Lookup(vma.start_page)->frame;
  EXPECT_EQ(first % kPagesPerHuge, 0u);  // huge-aligned anchor
  for (uint64_t p = 1; p < 100; ++p) {
    EXPECT_EQ(vm.guest().table().Lookup(vma.start_page + p)->frame,
              first + p);
  }
}

TEST(GeminiPolicy, BucketEnablesInstantReuseAfterTeardown) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  // Phase 1: populate, promote, converge to aligned pages.
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(6 * kPagesPerHuge);
  TouchRange(machine, 0, vma.start_page, vma.pages);
  machine.AdvanceTime(50 * machine.config().daemon_period);
  TouchRange(machine, 0, vma.start_page, vma.pages);
  machine.AdvanceTime(50 * machine.config().daemon_period);
  const auto before =
      metrics::AuditAlignment(vm.guest().table(), vm.host_slice().table());
  ASSERT_GE(before.aligned_pairs, 4u);

  auto* guest_policy =
      dynamic_cast<gemini::GeminiGuestPolicy*>(&vm.guest().policy());
  ASSERT_NE(guest_policy, nullptr);
  vm.guest().UnmapVma(vma.id);
  ASSERT_NE(guest_policy->bucket(), nullptr);
  EXPECT_GE(guest_policy->bucket()->deposits(), 4u);

  // Phase 2: a new workload in the reused VM is placed onto bucketed
  // (still hugely-backed) regions and re-promoted by the next daemon pass.
  osim::Vma& vma2 = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  TouchRange(machine, 0, vma2.start_page, vma2.pages);
  machine.AdvanceTime(20 * machine.config().daemon_period);
  const auto after =
      metrics::AuditAlignment(vm.guest().table(), vm.host_slice().table());
  EXPECT_GE(guest_policy->bucket()->reuses(), 1u);
  EXPECT_GE(after.aligned_pairs, 2u);
  EXPECT_GE(after.well_aligned_rate, 0.5);
}

TEST(GeminiPolicy, HostBacksGuestHugePagesViaChannel) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  TouchRange(machine, 0, vma.start_page, vma.pages);
  machine.AdvanceTime(80 * machine.config().daemon_period);
  // Every guest huge page must end up backed by a huge EPT leaf.
  uint64_t matched = 0;
  uint64_t total = 0;
  vm.guest().table().ForEachHuge([&](uint64_t, uint64_t gfn) {
    ++total;
    matched += vm.host_slice().table().IsHugeMapped(gfn >> kHugeOrder) ? 1 : 0;
  });
  ASSERT_GT(total, 0u);
  EXPECT_EQ(matched, total);
}

TEST(GeminiPolicy, BeatsThpAlignmentUnderFragmentation) {
  auto run = [](bool use_gemini) {
    osim::Machine machine(SmallConfig());
    osim::VirtualMachine* vm;
    if (use_gemini) {
      vm = &gemini::InstallGeminiVm(machine, 32768);
    } else {
      vm = &machine.AddVm(32768, std::make_unique<policy::ThpPolicy>(),
                          std::make_unique<policy::ThpPolicy>());
    }
    machine.FragmentHostMemory(0.9);
    machine.FragmentGuestMemory(0, 0.7);
    // Boot-like noise: scattered base traffic that leaves stale EPT state.
    osim::Vma& noise = vm->guest().aspace().MapAnonymous(8000);
    for (uint64_t p = 0; p < 8000; p += 2) {
      machine.Access(0, noise.start_page + p, 20);
    }
    vm->guest().UnmapVma(noise.id);
    osim::Vma& vma = vm->guest().aspace().MapAnonymous(8 * kPagesPerHuge);
    TouchRange(machine, 0, vma.start_page, vma.pages);
    machine.AdvanceTime(80 * machine.config().daemon_period);
    TouchRange(machine, 0, vma.start_page, vma.pages);
    machine.AdvanceTime(80 * machine.config().daemon_period);
    return metrics::AuditAlignment(vm->guest().table(),
                                   vm->host_slice().table());
  };
  const auto gemini_report = run(true);
  const auto thp_report = run(false);
  EXPECT_GT(gemini_report.well_aligned_rate, thp_report.well_aligned_rate);
}

TEST(GeminiPolicy, AblationEmaOffDegradesAlignment) {
  auto run = [](bool ema_on) {
    gemini::GeminiOptions options;
    options.enable_ema = ema_on;
    osim::Machine machine(SmallConfig());
    auto& vm = gemini::InstallGeminiVm(machine, 32768, options);
    machine.FragmentGuestMemory(0, 0.7);
    osim::Vma& vma = vm.guest().aspace().MapAnonymous(8 * kPagesPerHuge);
    TouchRange(machine, 0, vma.start_page, vma.pages);
    machine.AdvanceTime(60 * machine.config().daemon_period);
    return metrics::AuditAlignment(vm.guest().table(),
                                   vm.host_slice().table());
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_GE(on.aligned_pairs, off.aligned_pairs);
  EXPECT_GT(on.aligned_pairs, 0u);
}

TEST(GeminiPolicy, AblationBucketOffStopsReuse) {
  gemini::GeminiOptions options;
  options.enable_bucket = false;
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 32768, options);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  TouchRange(machine, 0, vma.start_page, vma.pages);
  machine.AdvanceTime(50 * machine.config().daemon_period);
  auto* guest_policy =
      dynamic_cast<gemini::GeminiGuestPolicy*>(&vm.guest().policy());
  vm.guest().UnmapVma(vma.id);
  EXPECT_EQ(guest_policy->bucket()->deposits(), 0u);
}

TEST(GeminiPolicy, BookingReservesType1HostHugeRegions) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  // Create a misaligned host huge page over untouched guest space: back
  // GPA region 20 hugely, directly in the EPT.
  auto& host = vm.host_slice();
  const uint64_t block = machine.host().buddy().Allocate(base::kHugeOrder);
  ASSERT_NE(block, vmem::kInvalidFrame);
  host.table().MapHuge(20, block);
  // Let MHPS scan and the guest daemon book.
  machine.AdvanceTime(50 * machine.config().daemon_period);
  auto* guest_policy =
      dynamic_cast<gemini::GeminiGuestPolicy*>(&vm.guest().policy());
  ASSERT_NE(guest_policy->booking(), nullptr);
  EXPECT_TRUE(guest_policy->booking()->IsBooked(20 * kPagesPerHuge));
}

TEST(GeminiPolicy, InstallWiresScannerTask) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 32768);
  vm.guest().table().MapHuge(9, 3 * kPagesPerHuge);
  ASSERT_TRUE(vm.guest().buddy().AllocateAt(3 * kPagesPerHuge,
                                            kPagesPerHuge));
  machine.AdvanceTime(10000000);  // let the periodic scan run
  // The scan must have published the misaligned guest huge page; the host
  // promoter then fixes it, so EITHER it is listed OR already fixed.
  EXPECT_TRUE(vm.host_slice().table().IsHugeMapped(3));
}

}  // namespace
