// Tests for the deterministic RNG and the zipfian sampler.
#include "base/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

TEST(Rng, DeterministicForSameSeed) {
  base::Rng a(42);
  base::Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  base::Rng a(1);
  base::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  base::Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  base::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(Rng, NextRangeWithinBounds) {
  base::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const uint64_t v = rng.NextRange(100, 200);
    EXPECT_GE(v, 100u);
    EXPECT_LT(v, 200u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  base::Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  base::Rng rng(17);
  int trues = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) {
      ++trues;
    }
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.3, 0.01);
}

TEST(Rng, UniformityChiSquaredSanity) {
  base::Rng rng(23);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBelow(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 dof; p=0.001 critical value ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, ShufflePermutes) {
  base::Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Zipf, ThetaZeroIsUniform) {
  base::Rng rng(31);
  base::ZipfSampler zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 250);
  }
}

TEST(Zipf, SamplesWithinDomain) {
  base::Rng rng(37);
  base::ZipfSampler zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

TEST(Zipf, SkewConcentratesMassOnHead) {
  base::Rng rng(41);
  base::ZipfSampler zipf(10000, 0.99);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 100) {  // top 1 % of ranks
      ++head;
    }
  }
  // Under theta=0.99 the top 1 % of ranks draw far more than 1 % of mass.
  EXPECT_GT(head, n / 4);
}

TEST(Zipf, HigherThetaMoreSkewed) {
  base::Rng rng1(43);
  base::Rng rng2(43);
  base::ZipfSampler mild(10000, 0.5);
  base::ZipfSampler steep(10000, 0.95);
  int mild_head = 0;
  int steep_head = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_head += mild.Sample(rng1) < 100 ? 1 : 0;
    steep_head += steep.Sample(rng2) < 100 ? 1 : 0;
  }
  EXPECT_GT(steep_head, mild_head);
}

// Property sweep: every (n, theta) combination stays in-domain and the rank
// frequencies are monotonically non-increasing in expectation.
class ZipfParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfParamTest, RankZeroIsModalAndInDomain) {
  const auto [n, theta] = GetParam();
  base::Rng rng(47);
  base::ZipfSampler zipf(n, theta);
  std::vector<uint64_t> counts(std::min<uint64_t>(n, 64), 0);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t rank = zipf.Sample(rng);
    ASSERT_LT(rank, n);
    if (rank < counts.size()) {
      ++counts[rank];
    }
  }
  if (theta > 0.3 && n >= 16) {
    uint64_t max_count = 0;
    for (uint64_t c : counts) {
      max_count = std::max(max_count, c);
    }
    EXPECT_EQ(counts[0], max_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, ZipfParamTest,
    ::testing::Combine(::testing::Values(1ull, 2ull, 16ull, 1024ull, 65536ull),
                       ::testing::Values(0.0, 0.5, 0.8, 0.99)));

}  // namespace
