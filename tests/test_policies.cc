// Tests for the baseline huge-page policies (THP, Misalignment/AlwaysHuge,
// Ingens, HawkEye, CA-paging, Translation Ranger).
#include <gtest/gtest.h>

#include "base/types.h"
#include "os/machine.h"
#include "policy/base_only.h"
#include "policy/ca_paging.h"
#include "policy/hawkeye.h"
#include "policy/ingens.h"
#include "policy/misalignment.h"
#include "policy/thp.h"
#include "policy/translation_ranger.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 32768;
  config.daemon_period = 10000;
  config.seed = 9;
  return config;
}

// Touches every page of a fresh VMA covering `regions` huge regions.
osim::Vma& PopulateVma(osim::Machine& machine, int32_t vm_id,
                       uint64_t regions) {
  auto& guest = machine.vm(vm_id).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(regions * kPagesPerHuge);
  for (uint64_t p = 0; p < vma.pages; ++p) {
    machine.Access(vm_id, vma.start_page + p);
  }
  return vma;
}

TEST(BaseOnly, NeverCreatesHugePages) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  PopulateVma(machine, 0, 4);
  machine.AdvanceTime(1000000);
  EXPECT_EQ(machine.vm(0).guest().table().huge_leaves(), 0u);
  EXPECT_EQ(machine.vm(0).host_slice().table().huge_leaves(), 0u);
}

TEST(Thp, EagerFaultCreatesHugePagesImmediately) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(8192, std::make_unique<policy::ThpPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(2 * kPagesPerHuge);
  machine.Access(0, vma.start_page);
  EXPECT_EQ(guest.table().huge_leaves(), 1u);
}

TEST(Thp, SynchronousCompactionChargedOnFailure) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(2048, std::make_unique<policy::ThpPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  // Destroy all guest contiguity.
  for (uint64_t f = 256; f < 2048; f += 512) {
    ASSERT_TRUE(guest.buddy().AllocateAt(f, 1));
  }
  osim::Vma& vma = guest.aspace().MapAnonymous(kPagesPerHuge);
  const auto r = machine.Access(0, vma.start_page);
  EXPECT_EQ(guest.stats().failed_huge_allocs, 1u);
  // The access stalled on direct compaction.
  EXPECT_GT(r.cycles, machine.config().costs.direct_compaction);
}

TEST(Thp, KhugepagedCollapsesPartialRegions) {
  osim::Machine machine(SmallConfig());
  policy::ThpOptions options;
  options.fault_huge = false;  // force the daemon path
  machine.AddVm(8192, std::make_unique<policy::ThpPolicy>(options),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(kPagesPerHuge);
  // Populate above the collapse bar (64) but far from complete.
  for (uint64_t p = 0; p < 128; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  machine.AdvanceTime(20 * machine.config().daemon_period);
  EXPECT_TRUE(guest.table().IsHugeMapped(vma.start_page >> kHugeOrder));
  EXPECT_EQ(guest.stats().promotions_migrated, 1u);
}

TEST(AlwaysHuge, HostBacksEveryRegionHuge) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                std::make_unique<policy::AlwaysHugePolicy>());
  PopulateVma(machine, 0, 2);
  // Guest stays base; host is all huge: the Misalignment scenario.
  EXPECT_EQ(machine.vm(0).guest().table().huge_leaves(), 0u);
  EXPECT_GE(machine.vm(0).host_slice().table().huge_leaves(), 2u);
}

TEST(Ingens, NoFaultTimeHugePages) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(8192, std::make_unique<policy::IngensPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(kPagesPerHuge);
  machine.Access(0, vma.start_page);
  EXPECT_EQ(guest.stats().huge_faults, 0u);
}

TEST(Ingens, PromotesOnlyAboveUtilizationBar) {
  osim::Machine machine(SmallConfig());
  policy::IngensOptions options;
  options.promote_min_present = 460;
  machine.AddVm(16384, std::make_unique<policy::IngensPolicy>(options),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(2 * kPagesPerHuge);
  // Region 0: 400 pages (below bar).  Region 1: full (above bar).
  for (uint64_t p = 0; p < 400; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  for (uint64_t p = kPagesPerHuge; p < 2 * kPagesPerHuge; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  machine.AdvanceTime(20 * machine.config().daemon_period);
  EXPECT_FALSE(guest.table().IsHugeMapped(vma.start_page >> kHugeOrder));
  EXPECT_TRUE(guest.table().IsHugeMapped((vma.start_page >> kHugeOrder) + 1));
}

TEST(Ingens, IgnoresStaleUnaccessedRegions) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(16384, std::make_unique<policy::IngensPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(kPagesPerHuge);
  for (uint64_t p = 0; p < kPagesPerHuge; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  // Let access counters decay to zero with repeated idle ticks.
  for (int i = 0; i < 40; ++i) {
    machine.AdvanceTime(machine.config().daemon_period);
  }
  guest.table().DecayAccessCounts();
  const uint64_t promotions_before = guest.stats().promotions_in_place +
                                     guest.stats().promotions_migrated;
  machine.AdvanceTime(5 * machine.config().daemon_period);
  // If already promoted during population that is fine; the point is that
  // a *cold* base region is not promoted.
  if (!guest.table().IsHugeMapped(vma.start_page >> kHugeOrder)) {
    EXPECT_EQ(guest.stats().promotions_in_place +
                  guest.stats().promotions_migrated,
              promotions_before);
  }
}

TEST(HawkEye, PromotesHottestRegionFirst) {
  osim::Machine machine(SmallConfig());
  policy::HawkEyeOptions options;
  options.promotions_per_tick = 1;  // one promotion per tick: order visible
  machine.AddVm(16384, std::make_unique<policy::HawkEyePolicy>(options),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(2 * kPagesPerHuge);
  for (uint64_t p = 0; p < 2 * kPagesPerHuge; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  // Make region 1 much hotter than region 0.
  for (int i = 0; i < 3000; ++i) {
    machine.vm(0).engine().Translate(vma.start_page + kPagesPerHuge +
                                     (i % kPagesPerHuge));
  }
  const uint64_t region0 = vma.start_page >> kHugeOrder;
  // Run exactly one daemon tick.
  machine.AdvanceTime(machine.config().daemon_period);
  if (guest.table().huge_leaves() == 1) {
    EXPECT_TRUE(guest.table().IsHugeMapped(region0 + 1));
    EXPECT_FALSE(guest.table().IsHugeMapped(region0));
  }
}

TEST(CaPaging, AnchorsVmaToContiguousRun) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(16384, std::make_unique<policy::CaPagingPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(256);
  for (uint64_t p = 0; p < 256; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  // All pages must be physically consecutive.
  const uint64_t first = guest.table().Lookup(vma.start_page)->frame;
  for (uint64_t p = 0; p < 256; ++p) {
    EXPECT_EQ(guest.table().Lookup(vma.start_page + p)->frame, first + p);
  }
}

TEST(CaPaging, FindContiguousRunHelper) {
  vmem::BuddyAllocator buddy(4096);
  ASSERT_TRUE(buddy.AllocateAt(1000, 1));
  EXPECT_EQ(policy::FindContiguousRun(buddy, 500, 0), 0u);
  EXPECT_EQ(policy::FindContiguousRun(buddy, 1001, 0), 1001u);
  EXPECT_EQ(policy::FindContiguousRun(buddy, 4000, 0), vmem::kInvalidFrame);
  // Cursor past the only fitting run wraps around.
  EXPECT_EQ(policy::FindContiguousRun(buddy, 900, 2000), 2000u);
  EXPECT_EQ(policy::FindContiguousRun(buddy, 900, 3500), 0u);
}

TEST(Ranger, MigratesSparseRegionsUnconditionally) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(16384, std::make_unique<policy::TranslationRangerPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  osim::Vma& vma = guest.aspace().MapAnonymous(kPagesPerHuge);
  for (uint64_t p = 0; p < 32; ++p) {  // far below any utilization bar
    machine.Access(0, vma.start_page + p);
  }
  machine.AdvanceTime(5 * machine.config().daemon_period);
  EXPECT_TRUE(guest.table().IsHugeMapped(vma.start_page >> kHugeOrder));
}

TEST(Ranger, ChargesContinuousBackgroundOverhead) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(16384, std::make_unique<policy::TranslationRangerPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  PopulateVma(machine, 0, 2);
  machine.AdvanceTime(10 * machine.config().daemon_period);
  const base::Cycles overhead_a = guest.stats().overhead_cycles;
  machine.AdvanceTime(10 * machine.config().daemon_period);
  const base::Cycles overhead_b = guest.stats().overhead_cycles;
  // Even with nothing left to promote, Ranger keeps paying.
  EXPECT_GT(overhead_b, overhead_a);
}

TEST(Policies, WatermarkGuardStopsPromotionUnderPressure) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(2048, std::make_unique<policy::IngensPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  auto& guest = machine.vm(0).guest();
  // Leave < 1/16 of memory free.
  ASSERT_TRUE(guest.buddy().AllocateAt(0, 2048 - 64));
  EXPECT_FALSE(policy::HasFreeMemoryHeadroom(guest));
  osim::Vma& vma = guest.aspace().MapAnonymous(32);
  for (uint64_t p = 0; p < 32; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  machine.AdvanceTime(5 * machine.config().daemon_period);
  EXPECT_EQ(guest.table().huge_leaves(), 0u);
}

}  // namespace
