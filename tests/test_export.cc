// Tests for the CSV/JSON result export.
#include "metrics/export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/driver.h"

namespace {

workload::RunResult SampleResult() {
  workload::RunResult r;
  r.workload = "demo";
  r.throughput = 1.5;
  r.mean_latency = 1000.0;
  r.p99_latency = 2000.0;
  r.tlb_misses = 42;
  r.counters.tlb_stale_hits = 6;
  r.tlb_miss_rate = 0.25;
  r.alignment.guest_huge = 7;
  r.alignment.host_huge = 9;
  r.alignment.well_aligned_rate = 0.875;
  r.counters.bookings_started = 11;
  r.counters.bookings_expired = 3;
  r.counters.bucket_hits = 5;
  r.counters.demotions = 2;
  r.counters.tier_demoted_pages = 30;
  r.counters.tier_refaults = 12;
  r.counters.tier_resident = 18;
  r.counters.batches = 13;
  r.counters.batched_accesses = 832;
  r.counters.batch_region_groups = 40;
  r.counters.batch_fastpath_hits = 700;
  r.counters.batch_size_hist = {1, 0, 0, 0, 0, 0, 12, 0};
  r.counters.tlb_cross_vm_evictions = 4;
  r.counters.tlb_vm_invalidated = 8;
  r.counters.tlb_conflict_evictions_base = 3;
  r.counters.tlb_conflict_evictions_huge = 1;
  r.counters.tlb_capacity_evictions_base = 2;
  r.counters.tlb_capacity_evictions_huge = 2;
  r.counters.walk.guest_mem = {1, 2, 3, 4};
  r.counters.walk.guest_cached = {5, 6, 0, 0};  // only L4/L3 are PWC-covered
  r.counters.walk.host_mem = {7, 8, 9, 10};
  r.counters.walk.host_cached = {11, 12, 0, 0};
  r.counters.walk.nested_hit = {13, 14, 15, 16};
  r.counters.walk.nested_walk = {17, 18, 19, 20};
  r.counters.walk.memo_hits = 21;
  r.counters.walk.memo_upper_hits = 22;
  // Utility-monitor attribution + shadow sampler: 15 shadow hits with a
  // curve that crosses 90% at 2 ways (10 then 5), 5 full-depth misses.
  r.counters.tlb_displaced_by_self = 5;
  r.counters.tlb_displaced_by_other = 9;
  r.counters.util_way_hits[0] = 10;
  r.counters.util_way_hits[1] = 5;
  r.counters.util_shadow_misses = 5;
  // Dynamic repartitioning: a 6-way window after 2 applied repartitions
  // that dropped 14 stranded entries.
  r.counters.tlb_ways_assigned = 6;
  r.counters.tlb_repartitions = 2;
  r.counters.tlb_repartition_evictions = 14;
  // 100 translations: 50 in [2,3], 45 in [32,63], 5 in [128,255] — so
  // p50 = 3, p90 = 63, p99 = 255 (nearest-rank bucket upper bounds).
  r.counters.lat_hist[1] = 50;
  r.counters.lat_hist[5] = 45;
  r.counters.lat_hist[7] = 5;
  r.busy_cycles = 123456;
  return r;
}

TEST(Export, CsvHasHeaderAndRow) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(csv.find("workload,system,throughput"), std::string::npos);
  EXPECT_NE(csv.find("Redis,Gemini,1.5,1000,2000,42,6,0.25,0.875,7,9,11,3,5,"
                     "2,30,12,18,13,832,40,700,1,0,0,0,0,0,12,0,private,4,8,4,4,"
                     "5,9,15,5,2,6,2,14,3,63,255,"
                     "1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,"
                     "21,22,123456"),
            std::string::npos);
}

TEST(Export, CsvCarriesWallTimeAndSeedColumns) {
  const auto r = SampleResult();
  const std::string csv = metrics::ToCsv(
      {metrics::ResultRow{"Redis", "Gemini", &r, /*wall_ms=*/12.5,
                          /*seed=*/99}});
  // Header ends with the regression-tracking columns.
  EXPECT_NE(csv.find("busy_cycles,wall_ms,seed\n"), std::string::npos);
  EXPECT_NE(csv.find(",123456,12.5,99\n"), std::string::npos);
}

TEST(Export, CsvDefaultsWallTimeAndSeedToZero) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(csv.find(",123456,0,0\n"), std::string::npos);
}

TEST(Export, CsvEscapesCommasAndQuotes) {
  const auto r = SampleResult();
  const std::string csv = metrics::ToCsv(
      {metrics::ResultRow{"a,b", "say \"hi\"", &r}});
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Export, JsonIsWellFormedEnough) {
  const auto r = SampleResult();
  const std::string json = metrics::ToJson(
      {metrics::ResultRow{"Redis", "Gemini", &r},
       metrics::ResultRow{"Redis", "THP", &r}});
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"system\": \"Gemini\""), std::string::npos);
  EXPECT_NE(json.find("\"well_aligned_rate\": 0.875"), std::string::npos);
  // Exactly one separating comma between the two objects.
  EXPECT_NE(json.find("},"), std::string::npos);
}

TEST(Export, JsonEscapesSpecialCharacters) {
  const auto r = SampleResult();
  const std::string json = metrics::ToJson(
      {metrics::ResultRow{"quote\"backslash\\", "sys", &r}});
  EXPECT_NE(json.find("quote\\\"backslash\\\\"), std::string::npos);
}

TEST(Export, JsonEscapesControlCharactersInWorkloadNames) {
  const auto r = SampleResult();
  const std::string json = metrics::ToJson(
      {metrics::ResultRow{"tab\there\nnewline", "sys", &r}});
  EXPECT_NE(json.find("tab\\u0009here\\u000anewline"), std::string::npos);
  // The raw control characters must not survive into the output value.
  EXPECT_EQ(json.find("tab\there"), std::string::npos);
}

TEST(Export, CarriesMechanismCounters) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(csv.find("bookings_started,bookings_expired,bucket_hits,"
                     "demotions,tier_demoted,tier_refaults,tier_resident,"
                     "batches"),
            std::string::npos);
  const std::string json =
      metrics::ToJson({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(json.find("\"bookings_started\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"bookings_expired\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"bucket_hits\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"demotions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tier_demoted\": 30"), std::string::npos);
  EXPECT_NE(json.find("\"tier_refaults\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"tier_resident\": 18"), std::string::npos);
}

TEST(Export, CarriesStaleHitColumn) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(csv.find("tlb_misses,stale_hits,tlb_miss_rate"),
            std::string::npos);
  const std::string json =
      metrics::ToJson({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(json.find("\"stale_hits\": 6"), std::string::npos);
}

TEST(Export, CarriesBatchPipelineColumns) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(csv.find("batches,batched_accesses,batch_region_groups,"
                     "batch_fastpath_hits,batch_hist_b0"),
            std::string::npos);
  EXPECT_NE(csv.find("batch_hist_b7,tlb_mode,cross_vm_evictions,"
                     "vm_invalidated,conflict_evictions,capacity_evictions,"
                     "displaced_by_self"),
            std::string::npos);
  const std::string json =
      metrics::ToJson({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(json.find("\"batches\": 13"), std::string::npos);
  EXPECT_NE(json.find("\"batched_accesses\": 832"), std::string::npos);
  EXPECT_NE(json.find("\"batch_region_groups\": 40"), std::string::npos);
  EXPECT_NE(json.find("\"batch_fastpath_hits\": 700"), std::string::npos);
  EXPECT_NE(json.find("\"batch_hist_b6\": 12"), std::string::npos);
}

TEST(Export, CarriesWalkLevelColumns) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  // The walk-level block sits between the TLB-domain columns and the
  // trailing regression-tracking columns.
  EXPECT_NE(csv.find("walk_guest_mem_l4,walk_guest_mem_l3,walk_guest_mem_l2,"
                     "walk_guest_mem_l1,walk_guest_pwc_l4,walk_guest_pwc_l3,"
                     "walk_host_mem_l4"),
            std::string::npos);
  EXPECT_NE(csv.find("walk_nested_walk_l1,walk_memo_hits,"
                     "walk_memo_upper_hits,busy_cycles,wall_ms,seed\n"),
            std::string::npos);
  const std::string json =
      metrics::ToJson({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(json.find("\"walk_guest_mem_l4\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"walk_guest_pwc_l3\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"walk_host_mem_l1\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"walk_nested_hit_l2\": 15"), std::string::npos);
  EXPECT_NE(json.find("\"walk_nested_walk_l1\": 20"), std::string::npos);
  EXPECT_NE(json.find("\"walk_memo_hits\": 21"), std::string::npos);
  EXPECT_NE(json.find("\"walk_memo_upper_hits\": 22"), std::string::npos);
}

TEST(Export, CarriesTlbDomainColumns) {
  const auto r = SampleResult();
  // Default rows export as private mode; an explicit mode tag rides along.
  const std::string csv = metrics::ToCsv(
      {metrics::ResultRow{"Redis", "Gemini", &r, 0.0, 0, "shared"}});
  EXPECT_NE(csv.find(",shared,4,8,4,4,"), std::string::npos);
  const std::string json = metrics::ToJson(
      {metrics::ResultRow{"Redis", "Gemini", &r, 0.0, 0, "shared"}});
  EXPECT_NE(json.find("\"tlb_mode\": \"shared\""), std::string::npos);
  EXPECT_NE(json.find("\"cross_vm_evictions\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"vm_invalidated\": 8"), std::string::npos);
  // Conflict/capacity export as per-size sums (3+1 and 2+2).
  EXPECT_NE(json.find("\"conflict_evictions\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"capacity_evictions\": 4"), std::string::npos);
}

TEST(Export, CarriesUtilityAndLatencyColumns) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(csv.find("capacity_evictions,displaced_by_self,"
                     "displaced_by_other,util_shadow_hits,"
                     "util_shadow_misses,util_min_ways_90,"
                     "ways_assigned,repartitions,repartition_evictions,"
                     "lat_p50,lat_p90,lat_p99,walk_guest_mem_l4"),
            std::string::npos);
  const std::string json =
      metrics::ToJson({metrics::ResultRow{"Redis", "Gemini", &r}});
  EXPECT_NE(json.find("\"displaced_by_self\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"displaced_by_other\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"util_shadow_hits\": 15"), std::string::npos);
  EXPECT_NE(json.find("\"util_shadow_misses\": 5"), std::string::npos);
  // 10 of 15 hits at depth 0 is 67%; the second way crosses 90%.
  EXPECT_NE(json.find("\"util_min_ways_90\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ways_assigned\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"repartitions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"repartition_evictions\": 14"), std::string::npos);
  EXPECT_NE(json.find("\"lat_p50\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"lat_p90\": 63"), std::string::npos);
  EXPECT_NE(json.find("\"lat_p99\": 255"), std::string::npos);
}

// Schema drift guard: the CSV header and every data row must agree on the
// column count, and every CSV column name must appear as a JSON key — so a
// field added to one renderer but not the other fails here instead of
// producing silently misaligned exports.
TEST(Export, SchemaHeaderRowAndJsonKeysStayInSync) {
  const auto r = SampleResult();
  const std::string csv =
      metrics::ToCsv({metrics::ResultRow{"Redis", "Gemini", &r}});
  const size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const size_t row_end = csv.find('\n', header_end + 1);
  ASSERT_NE(row_end, std::string::npos);
  const std::string header = csv.substr(0, header_end);
  const std::string row =
      csv.substr(header_end + 1, row_end - header_end - 1);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));

  const std::string json =
      metrics::ToJson({metrics::ResultRow{"Redis", "Gemini", &r}});
  std::stringstream names(header);
  std::string name;
  while (std::getline(names, name, ',')) {
    EXPECT_NE(json.find("\"" + name + "\":"), std::string::npos)
        << "CSV column '" << name << "' missing from the JSON export";
  }
}

TEST(Export, JsonCarriesWallTimeAndSeed) {
  const auto r = SampleResult();
  const std::string json = metrics::ToJson(
      {metrics::ResultRow{"Redis", "Gemini", &r, /*wall_ms=*/3.25,
                          /*seed=*/17}});
  EXPECT_NE(json.find("\"wall_ms\": 3.25"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 17"), std::string::npos);
}

TEST(Export, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/export_test.csv";
  metrics::WriteFile(path, "hello,world\n");
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "hello,world");
  std::remove(path.c_str());
}

TEST(Export, EmptyRowsProduceHeaderOnly) {
  const std::string csv = metrics::ToCsv({});
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);
  EXPECT_EQ(metrics::ToJson({}), "[\n]\n");
}

}  // namespace
