// Tests for the misaligned huge page promoter (MHPP): priority ordering,
// huge preallocation, and the host-side passes.
#include "gemini/promoter.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "gemini/channel.h"
#include "os/machine.h"
#include "policy/base_only.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;
using gemini::GeminiChannel;
using gemini::Promoter;
using gemini::PromoterOptions;

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 32768;
  // Daemons are driven manually in these tests.
  config.daemon_period = 1ull << 60;
  config.seed = 4;
  return config;
}

class PromoterTest : public ::testing::Test {
 protected:
  PromoterTest() : machine_(SmallConfig()) {
    vm_ = &machine_.AddVm(16384, std::make_unique<policy::BaseOnlyPolicy>(),
                          std::make_unique<policy::BaseOnlyPolicy>());
    channel_.guest_table = &vm_->guest().table();
    channel_.ept = &vm_->host_slice().table();
  }

  // Creates a VMA whose pages sit contiguously at a huge-aligned anchor
  // (as EMA would have placed them), with `present` of 512 pages mapped.
  uint64_t MakeAnchoredRegion(uint32_t present) {
    auto& guest = vm_->guest();
    osim::Vma& vma = guest.aspace().MapAnonymous(kPagesPerHuge);
    const uint64_t anchor = 8 * kPagesPerHuge + next_block_ * kPagesPerHuge;
    ++next_block_;
    EXPECT_TRUE(guest.buddy().AllocateAt(anchor, present));
    for (uint32_t slot = 0; slot < present; ++slot) {
      guest.table().MapBase(vma.start_page + slot, anchor + slot);
      guest.gpa_frames().SetUse(anchor + slot, 1, 0,
                                vmem::FrameUse::kAnonymous);
    }
    return vma.start_page >> kHugeOrder;
  }

  osim::Machine machine_;
  osim::VirtualMachine* vm_ = nullptr;
  GeminiChannel channel_;
  uint64_t next_block_ = 0;
};

TEST_F(PromoterTest, InPlacePromotionOfCompleteRegion) {
  Promoter promoter;
  const uint64_t region = MakeAnchoredRegion(512);
  promoter.RunGuestTick(vm_->guest(), channel_);
  EXPECT_TRUE(vm_->guest().table().IsHugeMapped(region));
  EXPECT_EQ(promoter.stats().in_place, 1u);
}

TEST_F(PromoterTest, PreallocationFillsAlmostCompleteRegion) {
  Promoter promoter;
  // 300 >= the 256 preallocation bar; guest FMFI is ~0 (unfragmented).
  const uint64_t region = MakeAnchoredRegion(300);
  promoter.RunGuestTick(vm_->guest(), channel_);
  EXPECT_TRUE(vm_->guest().table().IsHugeMapped(region));
  EXPECT_EQ(promoter.stats().preallocated, 1u);
}

TEST_F(PromoterTest, PreallocationGateRespectsMinPresent) {
  PromoterOptions options;
  options.normal_min_present = 460;
  Promoter promoter(options);
  const uint64_t region = MakeAnchoredRegion(100);  // below both bars
  promoter.RunGuestTick(vm_->guest(), channel_);
  EXPECT_FALSE(vm_->guest().table().IsHugeMapped(region));
  EXPECT_EQ(promoter.stats().preallocated, 0u);
}

TEST_F(PromoterTest, PreallocationGateRespectsFmfi) {
  PromoterOptions options;
  options.prealloc_max_fmfi = 0.5;
  options.normal_min_present = 511;  // keep the migration path out of it
  Promoter promoter(options);
  const uint64_t region = MakeAnchoredRegion(300);
  // Fragment the guest badly: the preallocation gate must close.  Pin one
  // frame per huge stride of the free space.
  auto& buddy = vm_->guest().buddy();
  for (uint64_t f = 0; f < buddy.frame_count(); f += kPagesPerHuge) {
    if (buddy.IsFrameFree(f + 11)) {
      ASSERT_TRUE(buddy.AllocateAt(f + 11, 1));
    }
  }
  ASSERT_GT(vm_->guest().Fmfi(), 0.5);
  promoter.RunGuestTick(vm_->guest(), channel_);
  EXPECT_EQ(promoter.stats().preallocated, 0u);
  EXPECT_FALSE(vm_->guest().table().IsHugeMapped(region));
}

TEST_F(PromoterTest, PriorityRegionsPromotedBeforeNormalOnes) {
  PromoterOptions options;
  options.promotions_per_tick = 1;
  options.normal_min_present = 100;
  options.prealloc_min_present = 513;  // disable preallocation
  Promoter promoter(options);
  // Two regions whose base pages sit at *unaligned* anchors in disjoint
  // guest-physical regions (not in-place promotable), A placed below B so
  // an unprioritized address-order pass would pick A first.
  auto& guest = vm_->guest();
  osim::Vma& vma_a = guest.aspace().MapAnonymous(kPagesPerHuge);
  osim::Vma& vma_b = guest.aspace().MapAnonymous(kPagesPerHuge);
  const uint64_t anchor_a = 2 * kPagesPerHuge + 7;   // GPA region 2
  const uint64_t anchor_b = 20 * kPagesPerHuge + 7;  // GPA region 20
  ASSERT_TRUE(guest.buddy().AllocateAt(anchor_a, 200));
  ASSERT_TRUE(guest.buddy().AllocateAt(anchor_b, 200));
  for (uint64_t p = 0; p < 200; ++p) {
    guest.table().MapBase(vma_a.start_page + p, anchor_a + p);
    guest.table().MapBase(vma_b.start_page + p, anchor_b + p);
  }
  // B's backing region is under a misaligned host huge page.
  channel_.host_huge_misaligned[20] = gemini::MisalignedRegion{};
  promoter.RunGuestTick(guest, channel_);
  // With budget 1, the priority region must be the one promoted.
  EXPECT_TRUE(guest.table().IsHugeMapped(vma_b.start_page >> kHugeOrder));
  EXPECT_FALSE(guest.table().IsHugeMapped(vma_a.start_page >> kHugeOrder));
  EXPECT_EQ(promoter.stats().priority_migrations, 1u);
}

TEST_F(PromoterTest, HostTickBacksType1GuestHugeDirectly) {
  Promoter promoter;
  // Guest huge page over GPA region 5, EPT empty there: type-1.
  vm_->guest().table().MapHuge(20, 5 * kPagesPerHuge);
  ASSERT_TRUE(vm_->guest().buddy().AllocateAt(5 * kPagesPerHuge,
                                              kPagesPerHuge));
  channel_.guest_huge_misaligned[5] = gemini::MisalignedRegion{};
  promoter.RunHostTick(vm_->host_slice(), channel_);
  EXPECT_TRUE(vm_->host_slice().table().IsHugeMapped(5));
  EXPECT_EQ(promoter.stats().priority_migrations, 1u);
}

TEST_F(PromoterTest, HostTickMigratesType2GuestHuge) {
  Promoter promoter;
  vm_->guest().table().MapHuge(20, 5 * kPagesPerHuge);
  // EPT has scattered base backing for part of region 5: type-2.
  for (uint64_t g = 0; g < 64; ++g) {
    vm_->host_slice().HandleFault(5 * kPagesPerHuge + g * 3);
  }
  gemini::MisalignedRegion m;
  m.type2 = true;
  channel_.guest_huge_misaligned[5] = m;
  promoter.RunHostTick(vm_->host_slice(), channel_);
  EXPECT_TRUE(vm_->host_slice().table().IsHugeMapped(5));
}

TEST_F(PromoterTest, HostOrdinarySweepPromotesInPlaceEligibleRegions) {
  Promoter promoter;
  // Two in-place-promotable EPT regions: both get promoted (the ordinary
  // pass runs after the priority pass — "first ... before other regions",
  // not exclusively), at zero block cost because they are in-place.
  auto& host = vm_->host_slice();
  for (uint64_t region : {3ull, 4ull}) {
    const uint64_t anchor = (10 + region) * kPagesPerHuge;
    ASSERT_TRUE(machine_.host().buddy().AllocateAt(anchor, kPagesPerHuge));
    for (uint64_t slot = 0; slot < kPagesPerHuge; ++slot) {
      host.table().MapBase(region * kPagesPerHuge + slot, anchor + slot);
    }
  }
  channel_.guest_huge_targets[3] = 99;  // region 3 is a guest-huge target
  promoter.RunHostTick(host, channel_);
  EXPECT_TRUE(host.table().IsHugeMapped(3));
  EXPECT_TRUE(host.table().IsHugeMapped(4));
  EXPECT_EQ(promoter.stats().in_place, 2u);
}

TEST_F(PromoterTest, HostOrdinaryMigrationNeedsDensityAndHeat) {
  Promoter promoter;
  auto& host = vm_->host_slice();
  // A dense but unaligned (not in-place-promotable) EPT region: skew the
  // allocator by one frame so the backing anchor is odd.
  ASSERT_TRUE(machine_.host().buddy().AllocateAt(0, 1));
  for (uint64_t slot = 0; slot < kPagesPerHuge; ++slot) {
    host.HandleFault(6 * kPagesPerHuge + slot);
  }
  ASSERT_FALSE(host.table().CanPromoteInPlace(6));
  // ...that is cold: the ordinary migration pass must skip it.
  promoter.RunHostTick(host, channel_);
  EXPECT_FALSE(host.table().IsHugeMapped(6));
  // Once hot, it qualifies.
  host.table().BumpAccess(6);
  promoter.RunHostTick(host, channel_);
  EXPECT_TRUE(host.table().IsHugeMapped(6));
  EXPECT_EQ(promoter.stats().normal_migrations, 1u);
}

TEST_F(PromoterTest, BudgetLimitsWorkPerTick) {
  PromoterOptions options;
  options.promotions_per_tick = 2;
  Promoter promoter(options);
  for (int i = 0; i < 5; ++i) {
    MakeAnchoredRegion(512);
  }
  promoter.RunGuestTick(vm_->guest(), channel_);
  EXPECT_EQ(vm_->guest().table().huge_leaves(), 2u);
  promoter.RunGuestTick(vm_->guest(), channel_);
  EXPECT_EQ(vm_->guest().table().huge_leaves(), 4u);
}

}  // namespace
