#include <set>
// Tests for the KSM deduplication scanner and the balloon driver — the
// paper's §8 future-work mechanisms and their interplay with huge pages.
#include <gtest/gtest.h>

#include "base/types.h"
#include "gemini/gemini_policy.h"
#include "metrics/alignment_audit.h"
#include "os/balloon.h"
#include "os/ksm.h"
#include "os/machine.h"
#include "policy/base_only.h"
#include "policy/misalignment.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 65536;
  config.daemon_period = 50000;
  config.seed = 12;
  return config;
}

// --- KSM --------------------------------------------------------------------

TEST(Ksm, BreaksColdHugeBackingsAndReclaimsFrames) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::AlwaysHugePolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  for (uint64_t p = 0; p < vma.pages; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  // Install the scanner once the memory exists (and is about to go cold).
  osim::KsmScanner* ksm = osim::InstallKsm(machine, 0, {}, /*period=*/100000);
  const uint64_t host_free_before = machine.host().buddy().free_frames();
  const uint64_t huge_before = vm.host_slice().table().huge_leaves();
  ASSERT_GT(huge_before, 0u);
  // Let the memory go cold, then let KSM pass over it.
  for (int i = 0; i < 16; ++i) {
    vm.host_slice().table().DecayAccessCounts();
  }
  machine.AdvanceTime(20 * 100000);
  EXPECT_GT(ksm->stats().huge_pages_broken, 0u);
  EXPECT_GT(ksm->stats().pages_merged, 0u);
  EXPECT_LT(vm.host_slice().table().huge_leaves(), huge_before);
  EXPECT_GT(machine.host().buddy().free_frames(), host_free_before);
}

TEST(Ksm, SkipsHotRegions) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::AlwaysHugePolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(2 * kPagesPerHuge);
  for (uint64_t p = 0; p < vma.pages; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  osim::KsmScanner* ksm = osim::InstallKsm(machine, 0, {}, 100000);
  // Keep the memory hot across the whole window.  (Access heat is bumped
  // on TLB misses; pin it explicitly so TLB hits don't mask the hotness.)
  auto& ept = vm.host_slice().table();
  for (int round = 0; round < 30; ++round) {
    ept.ForEachHuge([&](uint64_t region, uint64_t) {
      for (int i = 0; i < 32; ++i) {
        ept.BumpAccess(region);
      }
    });
    machine.AdvanceTime(100000);
  }
  EXPECT_EQ(ksm->stats().huge_pages_broken, 0u);
}

TEST(Ksm, MergedPagesShareOneFrame) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::AlwaysHugePolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(kPagesPerHuge);
  for (uint64_t p = 0; p < vma.pages; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  osim::KsmOptions options;
  options.mergeable_fraction = 1.0;
  osim::InstallKsm(machine, 0, options, 100000);
  for (int i = 0; i < 16; ++i) {
    vm.host_slice().table().DecayAccessCounts();
  }
  machine.AdvanceTime(20 * 100000);
  // All 512 EPT entries of the (former) huge region now map one frame.
  const auto g = vm.guest().table().Lookup(vma.start_page);
  ASSERT_TRUE(g.has_value());
  const uint64_t region = g->frame >> kHugeOrder;
  std::set<uint64_t> distinct;
  vm.host_slice().table().ForEachBasePage(
      region, [&](uint32_t, uint64_t frame) { distinct.insert(frame); });
  EXPECT_EQ(distinct.size(), 1u);
  // Accesses still translate correctly (to the shared frame).
  const auto r = machine.Access(0, vma.start_page + 5);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Ksm, GeminiRepairsKsmDamageOverTime) {
  // The paper's §8 concern, end to end: KSM demotes Gemini's host-huge
  // backings; the scanner re-detects the misalignment and the promoter
  // repairs it.
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 8192);
  osim::KsmOptions options;
  options.regions_per_pass = 1;
  osim::InstallKsm(machine, 0, options, 400000);
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  auto touch_all = [&]() {
    for (uint64_t p = 0; p < vma.pages; ++p) {
      machine.Access(0, vma.start_page + p);
    }
  };
  touch_all();
  machine.AdvanceTime(40 * machine.config().daemon_period);
  touch_all();  // keep the data hot so KSM stays away and repair can win
  machine.AdvanceTime(40 * machine.config().daemon_period);
  const auto report =
      metrics::AuditAlignment(vm.guest().table(), vm.host_slice().table());
  EXPECT_GE(report.well_aligned_rate, 0.7);
}

// --- Ballooning --------------------------------------------------------------

TEST(Balloon, InflateReleasesHostMemory) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  // Touch memory then free it so the guest's free frames carry stale host
  // backing — the state a balloon actually reclaims from.
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(2048);
  for (uint64_t p = 0; p < 2048; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  vm.guest().UnmapVma(vma.id);
  const uint64_t host_free_before = machine.host().buddy().free_frames();
  osim::BalloonDriver balloon(&machine, 0, /*alignment_aware=*/false);
  const uint64_t inflated = balloon.Inflate(1024);
  EXPECT_GT(inflated, 0u);
  EXPECT_GT(machine.host().buddy().free_frames(), host_free_before);
  EXPECT_EQ(balloon.stats().inflated_frames, inflated);
}

TEST(Balloon, DeflateReturnsGuestFrames) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  osim::BalloonDriver balloon(&machine, 0, false);
  const uint64_t guest_free_before =
      machine.vm(0).guest().buddy().free_frames();
  const uint64_t inflated = balloon.Inflate(512);
  ASSERT_GT(inflated, 0u);
  EXPECT_EQ(machine.vm(0).guest().buddy().free_frames(),
            guest_free_before - inflated);
  EXPECT_EQ(balloon.Deflate(inflated), inflated);
  EXPECT_EQ(machine.vm(0).guest().buddy().free_frames(), guest_free_before);
}

TEST(Balloon, NaiveBalloonBreaksHugeBackings) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::AlwaysHugePolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  for (uint64_t p = 0; p < vma.pages; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  ASSERT_GT(vm.host_slice().table().huge_leaves(), 0u);
  vm.guest().UnmapVma(vma.id);  // freed guest frames keep huge backing
  osim::BalloonDriver balloon(&machine, 0, /*alignment_aware=*/false);
  balloon.Inflate(1024);
  EXPECT_GT(balloon.stats().huge_backings_broken, 0u);
}

TEST(Balloon, AlignmentAwareBalloonPreservesHugeBackings) {
  auto run = [](bool aware) {
    osim::Machine machine(SmallConfig());
    auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                             std::make_unique<policy::AlwaysHugePolicy>());
    osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
    for (uint64_t p = 0; p < vma.pages; ++p) {
      machine.Access(0, vma.start_page + p);
    }
    vm.guest().UnmapVma(vma.id);  // freed guest frames keep huge backing
    osim::BalloonDriver balloon(&machine, 0, aware);
    balloon.Inflate(1024);
    return balloon.stats().huge_backings_broken;
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
